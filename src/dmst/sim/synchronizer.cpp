#include "dmst/sim/synchronizer.h"

#include <algorithm>
#include <queue>

#include "dmst/util/assert.h"

namespace dmst {

// ------------------------------------------------------- PulseSynchronizer

PulseSynchronizer::PulseSynchronizer(const WeightedGraph& g)
    : graph_(g), state_(g.vertex_count())
{
    // A degree-0 vertex can never learn its (nonexistent) neighbors are
    // safe and would free-run unboundedly; the pulse synchronizers, like
    // the protocols, are defined on graphs with no isolated vertices.
    for (VertexId v = 0; v < g.vertex_count(); ++v)
        DMST_ASSERT_MSG(g.degree(v) > 0,
                        "async engine requires every vertex to have degree >= 1");
}

void PulseSynchronizer::start_epoch(std::uint64_t base_level)
{
    base_level_ = base_level;
    for (CoreState& st : state_) {
        st.pulse = base_level;
        st.unacked = 0;
        st.safe = false;
        st.sends_done = false;
        DMST_ASSERT(st.buffer[0].empty() && st.buffer[1].empty());
    }
    reset_epoch();
}

void PulseSynchronizer::buffer_payload(VertexId v, std::uint64_t tag,
                                       AsyncIncoming&& in)
{
    CoreState& st = state_[v];
    DMST_ASSERT_MSG(tag == st.pulse || tag == st.pulse + 1,
                    "payload tag outside the synchronizer skew window");
    st.buffer[tag & 1].push_back(in);
}

void PulseSynchronizer::note_ack(VertexId v, std::vector<SyncEmit>& out)
{
    CoreState& st = state_[v];
    DMST_ASSERT_MSG(st.unacked > 0, "ACK with no send outstanding");
    --st.unacked;
    if (st.unacked == 0 && st.sends_done && !st.safe) {
        st.safe = true;
        on_safe(v, out);
    }
}

void PulseSynchronizer::note_pulse_sends_done(VertexId v,
                                              std::vector<SyncEmit>& out)
{
    CoreState& st = state_[v];
    st.sends_done = true;
    if (st.unacked == 0 && !st.safe) {
        st.safe = true;
        on_safe(v, out);
    }
}

void PulseSynchronizer::begin_pulse(VertexId v, std::vector<AsyncIncoming>& out)
{
    CoreState& st = state_[v];
    std::vector<AsyncIncoming>& buf = st.buffer[st.pulse & 1];
    // (port, seq) pairs are unique — one sender per port, one seq stream
    // per (sender, pulse, port) — so an unstable sort is deterministic.
    std::sort(buf.begin(), buf.end(),
              [](const AsyncIncoming& a, const AsyncIncoming& b) {
                  return a.port != b.port ? a.port < b.port : a.seq < b.seq;
              });
    // Copy out (16-byte handle records) rather than swapping buffers: a
    // swap would circulate capacities between vertices of different
    // degrees through the caller's shared scratch, forcing perpetual
    // regrowth; this way every vertex's buffer keeps its own high-water
    // capacity and the steady state never touches the allocator.
    out.assign(buf.begin(), buf.end());
    buf.clear();

    ++st.pulse;
    st.unacked = 0;
    st.safe = false;
    st.sends_done = false;
    reset_vertex(v);
}

// ------------------------------------------------------- AlphaSynchronizer

AlphaSynchronizer::AlphaSynchronizer(const WeightedGraph& g)
    : PulseSynchronizer(g), alpha_(g.vertex_count())
{
}

void AlphaSynchronizer::on_safe(VertexId v, std::vector<SyncEmit>& out)
{
    // SAFE(pulse) to every neighbor, in port order (the canonical staging
    // order the engine turns into its event schedule).
    const std::uint64_t level = state_[v].pulse;
    for (std::size_t p = 0; p < graph_.degree(v); ++p)
        out.push_back(SyncEmit{graph_.neighbor(v, p), 0, level});
}

void AlphaSynchronizer::on_control(VertexId v, std::uint32_t ctrl,
                                   std::uint64_t level,
                                   std::vector<SyncEmit>& out)
{
    (void)ctrl;
    (void)out;  // SAFE arrivals never trigger further control
    CoreState& st = state_[v];
    DMST_ASSERT_MSG(level == st.pulse || level == st.pulse + 1,
                    "SAFE level outside the synchronizer skew window");
    ++alpha_[v].safe_from[level & 1];
    DMST_ASSERT(alpha_[v].safe_from[level & 1] <= graph_.degree(v));
}

bool AlphaSynchronizer::ready(VertexId v) const
{
    const CoreState& st = state_[v];
    if (st.pulse == base_level_)
        return true;  // the epoch's first pulse is ungated
    return st.safe && alpha_[v].safe_from[st.pulse & 1] == graph_.degree(v);
}

void AlphaSynchronizer::reset_vertex(VertexId v)
{
    // begin_pulse consumed level pulse-1 (pulse is already the new value);
    // its SAFE slot is recycled for level pulse+1 of matching parity.
    alpha_[v].safe_from[(state_[v].pulse - 1) & 1] = 0;
}

void AlphaSynchronizer::reset_epoch()
{
    for (AlphaState& st : alpha_)
        st.safe_from[0] = st.safe_from[1] = 0;
}

// -------------------------------------------------------- BetaSynchronizer

BetaSynchronizer::BetaSynchronizer(const WeightedGraph& g)
    : PulseSynchronizer(g), beta_(g.vertex_count())
{
    // BFS spanning forest: one tree per component, rooted at the
    // component's minimum-id vertex; children discovered in (parent id,
    // port) order, so the tree — and with it the whole control schedule —
    // is a deterministic function of the graph alone.
    std::vector<std::uint8_t> seen(g.vertex_count(), 0);
    std::queue<VertexId> frontier;
    for (VertexId r = 0; r < g.vertex_count(); ++r) {
        if (seen[r])
            continue;
        seen[r] = 1;
        frontier.push(r);
        while (!frontier.empty()) {
            const VertexId u = frontier.front();
            frontier.pop();
            for (std::size_t p = 0; p < g.degree(u); ++p) {
                const VertexId w = g.neighbor(u, p);
                if (seen[w])
                    continue;
                seen[w] = 1;
                beta_[w].parent = u;
                beta_[w].parent_port = g.port_of(w, u);
                beta_[u].children.push_back(w);
                frontier.push(w);
            }
        }
    }
}

void BetaSynchronizer::maybe_advance(VertexId v, std::vector<SyncEmit>& out)
{
    BetaState& bt = beta_[v];
    if (bt.ready_sent || !state_[v].safe ||
        bt.ready_children != bt.children.size())
        return;
    bt.ready_sent = true;
    const std::uint64_t level = state_[v].pulse;
    if (root(v)) {
        // The whole tree is safe for `level`: broadcast GO and authorize
        // the root's own next pulse (its GO is local).
        for (VertexId c : bt.children)
            out.push_back(SyncEmit{c, kGo, level});
        bt.go = true;
    } else {
        out.push_back(SyncEmit{bt.parent, kReady, level});
    }
}

void BetaSynchronizer::on_safe(VertexId v, std::vector<SyncEmit>& out)
{
    maybe_advance(v, out);
}

void BetaSynchronizer::on_control(VertexId v, std::uint32_t ctrl,
                                  std::uint64_t level,
                                  std::vector<SyncEmit>& out)
{
    BetaState& bt = beta_[v];
    DMST_ASSERT_MSG(level == state_[v].pulse,
                    "beta control level outside the pulse it refers to");
    if (ctrl == kReady) {
        ++bt.ready_children;
        DMST_ASSERT(bt.ready_children <= bt.children.size());
        maybe_advance(v, out);
    } else {
        DMST_ASSERT(ctrl == kGo);
        DMST_ASSERT_MSG(!bt.go, "duplicate GO for one pulse");
        bt.go = true;
        // Forward down immediately — children need not wait for this
        // vertex's next pulse to learn the tree is safe.
        for (VertexId c : bt.children)
            out.push_back(SyncEmit{c, kGo, level});
    }
}

bool BetaSynchronizer::ready(VertexId v) const
{
    if (state_[v].pulse == base_level_)
        return true;  // the epoch's first pulse is ungated
    return beta_[v].go;
}

void BetaSynchronizer::reset_vertex(VertexId v)
{
    BetaState& bt = beta_[v];
    bt.ready_children = 0;
    bt.ready_sent = false;
    bt.go = false;
}

void BetaSynchronizer::reset_epoch()
{
    for (BetaState& bt : beta_) {
        bt.ready_children = 0;
        bt.ready_sent = false;
        bt.go = false;
    }
}

}  // namespace dmst
