#include "dmst/sim/synchronizer.h"

#include <algorithm>

#include "dmst/util/assert.h"

namespace dmst {

AlphaSynchronizer::AlphaSynchronizer(const WeightedGraph& g)
    : graph_(g), state_(g.vertex_count())
{
    // A degree-0 vertex can never learn its (nonexistent) neighbors are
    // safe and would free-run unboundedly; the α-synchronizer, like the
    // protocols, is defined on graphs with no isolated vertices.
    for (VertexId v = 0; v < g.vertex_count(); ++v)
        DMST_ASSERT_MSG(g.degree(v) > 0,
                        "async engine requires every vertex to have degree >= 1");
}

void AlphaSynchronizer::start_epoch(std::uint64_t base_level)
{
    base_level_ = base_level;
    for (VertexState& st : state_) {
        st.pulse = base_level;
        st.unacked = 0;
        st.safe = false;
        st.sends_done = false;
        st.safe_from[0] = 0;
        st.safe_from[1] = 0;
        DMST_ASSERT(st.buffer[0].empty() && st.buffer[1].empty());
    }
}

void AlphaSynchronizer::buffer_payload(VertexId v, std::uint64_t tag,
                                       AsyncIncoming&& in)
{
    VertexState& st = state_[v];
    DMST_ASSERT_MSG(tag == st.pulse || tag == st.pulse + 1,
                    "payload tag outside the synchronizer skew window");
    st.buffer[tag & 1].push_back(in);
}

bool AlphaSynchronizer::note_ack(VertexId v)
{
    VertexState& st = state_[v];
    DMST_ASSERT_MSG(st.unacked > 0, "ACK with no send outstanding");
    --st.unacked;
    if (st.unacked == 0 && st.sends_done && !st.safe) {
        st.safe = true;
        return true;
    }
    return false;
}

bool AlphaSynchronizer::note_pulse_sends_done(VertexId v)
{
    VertexState& st = state_[v];
    st.sends_done = true;
    if (st.unacked == 0 && !st.safe) {
        st.safe = true;
        return true;
    }
    return false;
}

void AlphaSynchronizer::note_safe(VertexId v, std::uint64_t level)
{
    VertexState& st = state_[v];
    DMST_ASSERT_MSG(level == st.pulse || level == st.pulse + 1,
                    "SAFE level outside the synchronizer skew window");
    ++st.safe_from[level & 1];
    DMST_ASSERT(st.safe_from[level & 1] <= graph_.degree(v));
}

bool AlphaSynchronizer::ready(VertexId v) const
{
    const VertexState& st = state_[v];
    if (st.pulse == base_level_)
        return true;  // the epoch's first pulse is ungated
    return st.safe && st.safe_from[st.pulse & 1] == graph_.degree(v);
}

void AlphaSynchronizer::begin_pulse(VertexId v, std::vector<AsyncIncoming>& out)
{
    VertexState& st = state_[v];
    std::vector<AsyncIncoming>& buf = st.buffer[st.pulse & 1];
    // (port, seq) pairs are unique — one sender per port, one seq stream
    // per (sender, pulse, port) — so an unstable sort is deterministic.
    std::sort(buf.begin(), buf.end(),
              [](const AsyncIncoming& a, const AsyncIncoming& b) {
                  return a.port != b.port ? a.port < b.port : a.seq < b.seq;
              });
    // Copy out (16-byte handle records) rather than swapping buffers: a
    // swap would circulate capacities between vertices of different
    // degrees through the caller's shared scratch, forcing perpetual
    // regrowth; this way every vertex's buffer keeps its own high-water
    // capacity and the steady state never touches the allocator.
    out.assign(buf.begin(), buf.end());
    buf.clear();

    // The SAFE slot of the consumed level is recycled for level pulse+2.
    st.safe_from[st.pulse & 1] = 0;
    ++st.pulse;
    st.unacked = 0;
    st.safe = false;
    st.sends_done = false;
}

}  // namespace dmst
