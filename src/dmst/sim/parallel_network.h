#ifndef DMST_SIM_PARALLEL_NETWORK_H
#define DMST_SIM_PARALLEL_NETWORK_H

#include <exception>
#include <memory>

#include "dmst/congest/network_base.h"
#include "dmst/sim/thread_pool.h"

namespace dmst {

// Sharded multi-threaded round engine. Vertices are partitioned into
// contiguous id ranges (one shard per worker); each synchronous round runs
// in two barrier-separated phases over a persistent thread pool:
//
//   1. step:    every shard resets its vertices' bandwidth ledgers and runs
//               on_round() in id order, staging sends into per-(source
//               shard, destination shard) outboxes;
//   2. deliver: every shard counting-scatters the staged outboxes addressed
//               to it — source shards in ascending order — into its region
//               of the shared inbox arena, then stable-sorts each vertex
//               span by arrival port. The coordinator sizes the arena and
//               assigns the per-shard regions between the two phases.
//
// Determinism: concatenating contiguous source shards in ascending order
// reproduces exactly the (sender id, send order) staging order of the
// serial engine, and the same stable per-port sort then yields bit-identical
// inboxes — so RunStats, process state, and protocol output are identical
// to Network for every shard and thread count. Counters are accumulated
// per shard and merged by the coordinator after each round.
//
// Shards write disjoint regions of the shared arena (and disjoint vertex
// ranges of the span/scratch tables), so the deliver phase needs no
// synchronization beyond the phase barrier; like the serial engine, the
// steady state performs zero per-message heap allocations at bandwidth=1.
//
// A process exception (e.g. a bandwidth violation) is captured per shard
// and rethrown after the phase barrier; when several shards throw in the
// same round, the lowest shard — i.e. the lowest vertex range, matching
// the serial engine's first-thrower — wins.
class ParallelNetwork : public NetworkBase {
public:
    // Worker count comes from config.threads (0 = hardware concurrency).
    // shard_override forces a shard count different from the worker count;
    // results do not depend on it (tests sweep it to prove that).
    ParallelNetwork(const WeightedGraph& g, NetConfig config,
                    int shard_override = 0);

    bool step() override;

    int threads() const { return threads_; }
    int shards() const { return shards_; }

protected:
    void send_from(VertexId from, std::size_t port, Message&& msg) override;

private:
    // Per-shard scratch, cache-line separated: only the owning worker
    // touches it during a phase; the coordinator merges between phases.
    struct alignas(64) ShardState {
        std::vector<StagedBuffer> out;  // by destination shard
        std::vector<Incoming> slab;     // grow-only arena for own vertices
        std::size_t live = 0;           // slots delivered into this round
        std::uint64_t messages = 0;
        std::uint64_t words = 0;
        std::vector<std::uint64_t> arrive_hist;  // by delay; only if record_per_round
        // Shim counters of this shard's sends this activation; folded by
        // the coordinator (which also takes the max horizon).
        FaultDelta faults;
        std::vector<std::uint64_t> edge_hist;  // only if record_per_edge
        std::vector<EdgeId> touched_edges;     // edges with edge_hist != 0
        SortScratch sort_scratch;
        std::exception_ptr error;
    };

    void run_phase(const std::function<void(int)>& phase);
    void step_shard(int s);
    void deliver_shard(int s);
    void fold_edge_histograms();
    void rethrow_shard_error();

    int threads_ = 1;
    int shards_ = 1;
    std::vector<VertexId> bounds_;  // size shards_+1; shard s = [b[s], b[s+1])
    std::vector<int> shard_of_;     // vertex -> owning shard, O(1) in send_from
    std::vector<ShardState> shard_states_;
    std::unique_ptr<ThreadPool> pool_;  // null when threads_ == 1
};

}  // namespace dmst

#endif  // DMST_SIM_PARALLEL_NETWORK_H
