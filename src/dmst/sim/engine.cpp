#include "dmst/sim/engine.h"

#include <stdexcept>

#include "dmst/congest/network.h"
#include "dmst/net/socket_network.h"
#include "dmst/sim/async_network.h"
#include "dmst/sim/parallel_network.h"
#include "dmst/util/cli.h"

namespace dmst {

std::unique_ptr<NetworkBase> make_network(const WeightedGraph& g,
                                          const NetConfig& config)
{
    switch (config.engine) {
        case Engine::Serial:
            return std::make_unique<Network>(g, config);
        case Engine::Parallel:
            return std::make_unique<ParallelNetwork>(g, config);
        case Engine::Async:
            if (config.conditioner.enabled())
                throw std::invalid_argument(
                    "the lock-step conditioner does not compose with "
                    "--engine=async (the async delay model subsumes it)");
            if (config.faults.crash_enabled())
                throw std::invalid_argument(
                    "crash-stop faults do not compose with --engine=async "
                    "(stall detection is a lock-step device)");
            return std::make_unique<AsyncNetwork>(g, config);
        case Engine::Socket:
            if (config.conditioner.enabled())
                throw std::invalid_argument(
                    "the link conditioner does not compose with "
                    "--engine=socket (a real transport has real links)");
            if (config.faults.enabled())
                throw std::invalid_argument(
                    "fault injection does not compose with --engine=socket "
                    "(its loss is real loss, handled by retransmission)");
            if (config.socket.procs < 1)
                throw std::invalid_argument("--procs must be >= 1");
            if (config.socket.rank < 0 ||
                config.socket.rank >= config.socket.procs)
                throw std::invalid_argument("--rank must be in [0, procs)");
            if (config.socket.procs > 1 &&
                (config.socket.base_port < 1024 ||
                 config.socket.base_port + config.socket.procs > 65536))
                throw std::invalid_argument(
                    "--base_port must leave [base_port, base_port + procs) "
                    "within [1024, 65536)");
            return std::make_unique<SocketNetwork>(g, config);
    }
    throw std::invalid_argument("make_network: unknown engine");
}

Engine parse_engine(const std::string& name)
{
    if (name == "serial")
        return Engine::Serial;
    if (name == "parallel")
        return Engine::Parallel;
    if (name == "async")
        return Engine::Async;
    if (name == "socket")
        return Engine::Socket;
    throw std::invalid_argument("unknown engine '" + name +
                                "' (expected serial|parallel|async|socket)");
}

const char* engine_name(Engine engine)
{
    switch (engine) {
        case Engine::Serial: return "serial";
        case Engine::Parallel: return "parallel";
        case Engine::Async: return "async";
        case Engine::Socket: return "socket";
    }
    return "unknown";
}

SyncMode parse_sync(const std::string& name)
{
    if (name == "alpha")
        return SyncMode::Alpha;
    if (name == "beta")
        return SyncMode::Beta;
    if (name == "none")
        return SyncMode::None;
    throw std::invalid_argument("unknown sync mode '" + name +
                                "' (expected alpha|beta|none)");
}

const char* sync_name(SyncMode sync)
{
    switch (sync) {
        case SyncMode::Alpha: return "alpha";
        case SyncMode::Beta: return "beta";
        case SyncMode::None: return "none";
    }
    return "unknown";
}

void define_engine_flags(Args& args)
{
    args.define("engine", "serial",
                "simulation engine: serial|parallel|async|socket");
    args.define("threads", "0",
                "parallel/async engine workers (0 = hardware concurrency)");
}

EngineSelection engine_from_args(const Args& args)
{
    EngineSelection sel;
    sel.engine = parse_engine(args.get("engine"));
    sel.threads = static_cast<int>(args.get_int("threads"));
    return sel;
}

void define_conditioner_flags(Args& args)
{
    args.define("latency", "0",
                "conditioner: per-link latency bound in rounds (0 = ideal)");
    args.define("hetero_b", "false",
                "conditioner: hash per-link bandwidth caps in [1, b]");
    args.define("adversarial_order", "false",
                "conditioner: adversarial (seeded) inbox delivery order");
    args.define("cond_seed", "7", "conditioner assignment seed");
}

ConditionerConfig conditioner_from_args(const Args& args)
{
    ConditionerConfig cc;
    cc.max_latency = static_cast<int>(args.get_int("latency"));
    cc.hetero_bandwidth = args.get_bool("hetero_b");
    cc.adversarial_order = args.get_bool("adversarial_order");
    cc.seed = static_cast<std::uint64_t>(args.get_int("cond_seed"));
    if (cc.max_latency < 0)
        throw std::invalid_argument("--latency must be >= 0");
    return cc;
}

void define_async_flags(Args& args)
{
    args.define("max_delay", "4",
                "async engine: per-message delay bound in virtual time");
    args.define("event_seed", "1", "async engine: delay-stream seed");
    args.define("sync", "alpha",
                "async engine: synchronizer (alpha|beta) or native "
                "message-driven dispatch (none)");
}

AsyncConfig async_from_args(const Args& args)
{
    AsyncConfig ac;
    ac.max_delay = static_cast<int>(args.get_int("max_delay"));
    ac.event_seed = static_cast<std::uint64_t>(args.get_int("event_seed"));
    ac.sync = parse_sync(args.get("sync"));
    if (ac.max_delay < 1)
        throw std::invalid_argument("--max_delay must be >= 1");
    return ac;
}

void define_fault_flags(Args& args)
{
    args.define("drop_rate", "0",
                "faults: per-transmission loss probability in [0, 1)");
    args.define("loss_seed", "11", "faults: loss-draw seed");
    args.define("burst_len", "1",
                "faults: consecutive transmissions sharing one loss draw");
    args.define("crash", "none",
                "faults: crash-stop spec v@r[+v@r...] (lock-step engines "
                "only), or none");
}

FaultConfig faults_from_args(const Args& args)
{
    FaultConfig fc;
    try {
        fc.drop_rate = std::stod(args.get("drop_rate"));
    } catch (const std::exception&) {
        throw std::invalid_argument("--drop_rate: not a number");
    }
    if (fc.drop_rate < 0.0 || fc.drop_rate >= 1.0)
        throw std::invalid_argument("--drop_rate must be in [0, 1)");
    fc.loss_seed = static_cast<std::uint64_t>(args.get_int("loss_seed"));
    fc.burst_len = static_cast<int>(args.get_int("burst_len"));
    if (fc.burst_len < 1)
        throw std::invalid_argument("--burst_len must be >= 1");
    fc.crashes = parse_crash_spec(args.get("crash"));
    return fc;
}

void define_socket_flags(Args& args)
{
    args.define("procs", "1", "socket engine: total ranks in the run");
    args.define("rank", "0", "socket engine: this process's rank");
    args.define("transport", "udp", "socket engine: udp|tcp");
    args.define("host", "127.0.0.1",
                "socket engine: peer host (IPv4 literal)");
    args.define("base_port", "0",
                "socket engine: rank r listens on base_port + r "
                "(required when procs > 1)");
    args.define("round_timeout_ms", "60000",
                "socket engine: barrier wait budget per round");
}

SocketConfig socket_from_args(const Args& args)
{
    SocketConfig sc;
    sc.procs = static_cast<int>(args.get_int("procs"));
    sc.rank = static_cast<int>(args.get_int("rank"));
    const std::string transport = args.get("transport");
    if (transport == "udp")
        sc.transport = SocketConfig::Transport::Udp;
    else if (transport == "tcp")
        sc.transport = SocketConfig::Transport::Tcp;
    else
        throw std::invalid_argument("--transport must be udp or tcp");
    sc.host = args.get("host");
    sc.base_port = static_cast<int>(args.get_int("base_port"));
    sc.round_timeout_ms = static_cast<int>(args.get_int("round_timeout_ms"));
    if (sc.round_timeout_ms < 1)
        throw std::invalid_argument("--round_timeout_ms must be >= 1");
    return sc;
}

const char* transport_name(SocketConfig::Transport transport)
{
    return transport == SocketConfig::Transport::Udp ? "udp" : "tcp";
}

}  // namespace dmst
