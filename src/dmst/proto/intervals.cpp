#include "dmst/proto/intervals.h"

#include <utility>

#include "dmst/congest/codec.h"
#include "dmst/util/assert.h"

namespace dmst {

void IntervalLabeler::attach(bool is_root,
                             std::vector<std::size_t> children_ports,
                             std::vector<std::uint64_t> child_sizes,
                             std::uint64_t subtree_size)
{
    DMST_ASSERT_MSG(!attached_, "attach() called twice");
    DMST_ASSERT(children_ports.size() == child_sizes.size());
    attached_ = true;
    is_root_ = is_root;
    children_ports_ = std::move(children_ports);
    child_sizes_ = std::move(child_sizes);
    subtree_size_ = subtree_size;
}

void IntervalLabeler::assign(Context& ctx, Interval interval)
{
    DMST_ASSERT_MSG(!labeled_, "interval assigned twice");
    DMST_ASSERT_MSG(interval.size() == subtree_size_,
                    "interval size does not match subtree size");
    labeled_ = true;
    own_ = interval;
    std::uint64_t cursor = interval.lo + 1;  // lo is this vertex's own index
    for (std::size_t i = 0; i < children_ports_.size(); ++i) {
        Interval child{cursor, cursor + child_sizes_[i]};
        cursor += child_sizes_[i];
        child_intervals_.push_back(child);
        ctx.send(children_ports_[i],
                 encode(tag_base_, IntervalAssignMsg{child.lo, child.hi}));
    }
    DMST_ASSERT(cursor == interval.hi);
}

void IntervalLabeler::start(Context& ctx)
{
    DMST_ASSERT_MSG(attached_ && is_root_, "start() is root-only, after attach()");
    assign(ctx, Interval{0, subtree_size_});
}

void IntervalLabeler::on_round(Context& ctx)
{
    for (const Incoming& in : ctx.inbox()) {
        if (!handles(in.msg.tag))
            continue;
        DMST_ASSERT_MSG(attached_, "ASSIGN before attach()");
        auto m = decode<IntervalAssignMsg>(in.msg);
        assign(ctx, Interval{m.lo, m.hi});
    }
}

}  // namespace dmst
