#ifndef DMST_PROTO_BFS_H
#define DMST_PROTO_BFS_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dmst/congest/network.h"

namespace dmst {

constexpr std::size_t kNoPort = ~std::size_t{0};

// Distributed synchronous BFS tree construction with echo, as used for the
// auxiliary tree τ of the Elkin algorithm ("This step requires O(D) time and
// O(|E|) messages").
//
// Protocol: the root floods EXPLORE waves carrying the sender depth; a
// vertex joins at its BFS distance, answers ACCEPT to its chosen parent
// (smallest port among the first-round explorers) and REJECT to all other
// explorers, then explores its remaining ports. When all ports are resolved
// and all children have echoed, a vertex ECHOes its subtree size and height
// to its parent. The root's echo completion implies global completion, with
// the vertex count and its eccentricity (the tree height) known at the root.
//
// Embeddable component: the owning Process calls on_round() every round;
// the builder reads only messages whose tag lies in its tag range
// [tag_base, tag_base+4) and sends only such messages.
class BfsBuilder {
public:
    // The builder stays idle until `start_round` (the root joins then;
    // non-roots join when explored). Tags used: tag_base+{0,1,2,3}.
    BfsBuilder(bool is_root, std::uint32_t tag_base, std::uint64_t start_round = 1);

    void on_round(Context& ctx);

    bool handles(std::uint32_t tag) const
    {
        return tag >= tag_base_ && tag < tag_base_ + 4;
    }

    // Local completion: this vertex has joined, resolved all ports, and
    // echoed (root: received all echoes). For the root this means the BFS
    // construction has globally terminated.
    bool finished() const { return finished_; }

    bool joined() const { return joined_; }
    std::uint32_t depth() const { return depth_; }
    std::size_t parent_port() const { return parent_port_; }
    const std::vector<std::size_t>& children_ports() const { return children_ports_; }

    // Valid once finished(): number of vertices / height of own subtree.
    std::uint64_t subtree_size() const { return subtree_size_; }
    std::uint32_t subtree_height() const { return subtree_height_; }

    // Subtree size below each child port (valid once finished()); used to
    // partition routing intervals among children.
    const std::unordered_map<std::size_t, std::uint64_t>& child_sizes() const
    {
        return child_sizes_;
    }

private:
    enum class PortState : std::uint8_t { Unknown, Parent, Child, NonChild };

    std::uint32_t tag_explore() const { return tag_base_ + 0; }
    std::uint32_t tag_accept() const { return tag_base_ + 1; }
    std::uint32_t tag_reject() const { return tag_base_ + 2; }
    std::uint32_t tag_echo() const { return tag_base_ + 3; }

    void join(Context& ctx, std::uint32_t depth, std::size_t parent_port);
    void maybe_echo(Context& ctx);

    bool is_root_;
    std::uint32_t tag_base_;
    std::uint64_t start_round_;

    bool joined_ = false;
    bool finished_ = false;
    std::uint32_t depth_ = 0;
    std::size_t parent_port_ = kNoPort;
    std::vector<PortState> ports_;  // sized on first on_round
    std::vector<std::size_t> children_ports_;
    std::size_t unresolved_ports_ = 0;
    std::size_t echoes_received_ = 0;
    std::unordered_map<std::size_t, std::uint64_t> child_sizes_;
    std::uint64_t subtree_size_ = 1;
    std::uint32_t subtree_height_ = 0;
    bool echo_sent_ = false;
};

}  // namespace dmst

#endif  // DMST_PROTO_BFS_H
