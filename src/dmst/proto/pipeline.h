#ifndef DMST_PROTO_PIPELINE_H
#define DMST_PROTO_PIPELINE_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "dmst/congest/network.h"
#include "dmst/graph/graph.h"
#include "dmst/proto/bfs.h"
#include "dmst/util/dsu.h"

namespace dmst {

// One item of a pipelined convergecast: an edge (identified by its EdgeKey)
// plus protocol-defined grouping ids and an auxiliary payload word. In the
// Elkin algorithm a record is "the lightest crossing edge found by base
// fragment `aux` for coarse fragment `group`"; in the GKP Pipeline baseline
// it is an inter-fragment edge with its two base fragment ids.
struct PipeRecord {
    EdgeKey key;
    std::uint64_t group = 0;
    std::uint64_t group2 = 0;
    std::uint64_t aux = 0;
};

// Strict total order used by the sorted streams: (key, group, group2).
using PipeSortKey = std::tuple<EdgeKey, std::uint64_t, std::uint64_t>;

inline PipeSortKey pipe_sort_key(const PipeRecord& r)
{
    return {r.key, r.group, r.group2};
}

// Emission policy: decides which records survive each hop of the upcast.
// admits() must be monotone under emission (once rejected, stays rejected),
// which both provided policies satisfy.
class UpcastFilter {
public:
    virtual ~UpcastFilter() = default;
    virtual bool admits(const PipeRecord& r) = 0;
    virtual void on_emit(const PipeRecord& r) = 0;
};

// Forwards everything (pure pipelining).
class KeepAllFilter : public UpcastFilter {
public:
    bool admits(const PipeRecord&) override { return true; }
    void on_emit(const PipeRecord&) override {}
};

// Forwards only the first (hence lightest) record per group: the per-coarse-
// fragment filtering of the Elkin upcast ("every intermediate vertex u
// forwards only the lightest edge for each fragment").
class GroupMinFilter : public UpcastFilter {
public:
    bool admits(const PipeRecord& r) override { return !emitted_.count(r.group); }
    void on_emit(const PipeRecord& r) override { emitted_.emplace(r.group, true); }

private:
    std::map<std::uint64_t, bool> emitted_;
};

// Forwards only records that join two distinct components of the local
// union-find over group ids: the cycle filter of the GKP Pipeline baseline
// (an edge heaviest on a cycle of already-forwarded edges is dropped).
// Group ids are mapped densely on first use.
class DsuCycleFilter : public UpcastFilter {
public:
    bool admits(const PipeRecord& r) override;
    void on_emit(const PipeRecord& r) override;

private:
    std::size_t index_of(std::uint64_t group);

    std::map<std::uint64_t, std::size_t> index_;
    std::unique_ptr<Dsu> dsu_;  // rebuilt with doubled capacity as needed
    std::size_t used_ = 0;
};

// Pipelined convergecast of sorted record streams over a rooted tree
// ([Pel00] Ch. 3; the workhorse of the Elkin algorithm's phase 2).
//
// Every vertex owns one instance. Local records are injected with
// add_local()/close_local(); each round the component merges its children's
// (sorted) streams with the local ones and emits up to `bandwidth` records
// to the parent in globally sorted order, applying the filter at every hop.
// A record is emitted only when it can no longer be preceded by a smaller
// record from any child (frontier rule), so streams stay sorted. DONE
// sentinels propagate exhaustion; at the root, emitted records accumulate
// in delivered().
//
// Rounds: O(depth + K/b) for K surviving records (measured in experiment
// E8). Messages: one per surviving record per hop, plus one DONE per edge.
class SortedMergeUpcast {
public:
    // Tags used: tag_base + {0 (record), 1 (done)}.
    SortedMergeUpcast(std::uint32_t tag_base, std::unique_ptr<UpcastFilter> filter);

    // Installs the tree position. Must be called before the first record
    // from a child arrives. parent_port == kNoPort makes this the root.
    void attach(std::size_t parent_port, std::vector<std::size_t> children_ports);
    bool attached() const { return attached_; }

    // Local contributions. Nothing is emitted until close_local() is
    // called (a pending local record could be smaller than anything seen).
    void add_local(const PipeRecord& r);
    void close_local();

    void on_round(Context& ctx);

    bool handles(std::uint32_t tag) const
    {
        return tag == tag_base_ || tag == tag_base_ + 1;
    }

    // Non-root: DONE sent. Root: every stream exhausted and drained.
    bool finished() const;

    // Root only: records that reached the root, in sorted order.
    const std::vector<PipeRecord>& delivered() const { return delivered_; }

private:
    struct ChildStream {
        std::size_t port = 0;
        std::optional<PipeSortKey> frontier;  // empty = nothing received yet
        bool done = false;
    };

    std::uint32_t tag_record() const { return tag_base_; }
    std::uint32_t tag_done() const { return tag_base_ + 1; }

    Message serialize(const PipeRecord& r) const;
    static PipeRecord deserialize(const Message& m);

    bool safe_to_emit(const PipeSortKey& k) const;

    std::uint32_t tag_base_;
    std::unique_ptr<UpcastFilter> filter_;
    bool attached_ = false;
    std::size_t parent_port_ = kNoPort;
    std::vector<ChildStream> children_;
    std::map<PipeSortKey, PipeRecord> buffer_;
    bool local_closed_ = false;
    bool done_sent_ = false;
    std::vector<PipeRecord> delivered_;
};

}  // namespace dmst

#endif  // DMST_PROTO_PIPELINE_H
