#include "dmst/proto/verify.h"

#include <algorithm>
#include <tuple>

#include "dmst/congest/codec.h"
#include "dmst/util/assert.h"

namespace dmst {

// ----------------------------------------------------- MarkedTreeBuilder

MarkedTreeBuilder::MarkedTreeBuilder(bool is_root, std::uint32_t tag_base,
                                     std::uint64_t start_round)
    : is_root_(is_root), tag_base_(tag_base), start_round_(start_round)
{
}

void MarkedTreeBuilder::attach(std::vector<std::uint8_t> marked)
{
    DMST_ASSERT_MSG(!attached_, "attach() called twice");
    attached_ = true;
    ports_.resize(marked.size());
    for (std::size_t p = 0; p < marked.size(); ++p) {
        ports_[p] = marked[p] ? PortState::Unknown : PortState::Unmarked;
        if (marked[p])
            ++unresolved_ports_;
    }
}

void MarkedTreeBuilder::join(Context& ctx, std::uint32_t depth,
                             std::size_t parent_port)
{
    DMST_ASSERT(!joined_);
    joined_ = true;
    depth_ = depth;
    parent_port_ = parent_port;
    if (parent_port != kNoPort) {
        ports_[parent_port] = PortState::Parent;
        --unresolved_ports_;
        ctx.send(parent_port, encode(tag_accept(), EmptyMsg{}));
    }
}

void MarkedTreeBuilder::resolve_nonchild(std::size_t port)
{
    ports_[port] = PortState::NonChild;
    nonchild_ports_.push_back(port);
    --unresolved_ports_;
}

void MarkedTreeBuilder::on_round(Context& ctx)
{
    if (finished_ || !attached_)
        return;

    // Pass 1: exploration traffic. The mask is the symmetric intersection
    // of the two endpoints' claims, so traffic on an unmarked port is a
    // protocol bug, not an input error.
    std::vector<std::size_t> explorers_this_round;
    for (const Incoming& in : ctx.inbox()) {
        if (!handles(in.msg.tag))
            continue;
        DMST_ASSERT_MSG(ports_[in.port] != PortState::Unmarked,
                        "marked-BFS traffic on an unmarked port");
        if (in.msg.tag == tag_explore()) {
            explorers_this_round.push_back(in.port);
        } else if (in.msg.tag == tag_accept()) {
            DMST_ASSERT(ports_[in.port] == PortState::Unknown);
            ports_[in.port] = PortState::Child;
            children_ports_.push_back(in.port);
            --unresolved_ports_;
        } else if (in.msg.tag == tag_reject()) {
            // Crossing EXPLOREs can resolve a port before the REJECT
            // lands; only an Unknown port still needs resolving.
            if (ports_[in.port] == PortState::Unknown)
                resolve_nonchild(in.port);
        }
    }

    if (!joined_) {
        if (is_root_ && ctx.round() >= start_round_) {
            join(ctx, 0, kNoPort);
        } else if (!explorers_this_round.empty()) {
            std::size_t parent = *std::min_element(explorers_this_round.begin(),
                                                   explorers_this_round.end());
            const Incoming* parent_msg = nullptr;
            for (const Incoming& in : ctx.inbox()) {
                if (handles(in.msg.tag) && in.msg.tag == tag_explore() &&
                    in.port == parent) {
                    parent_msg = &in;
                    break;
                }
            }
            DMST_ASSERT(parent_msg != nullptr);
            auto explore = decode<BfsExploreMsg>(parent_msg->msg);
            join(ctx, static_cast<std::uint32_t>(explore.depth) + 1, parent);
        }
        if (joined_) {
            for (std::size_t p : explorers_this_round) {
                if (p == parent_port_)
                    continue;
                DMST_ASSERT(ports_[p] == PortState::Unknown);
                resolve_nonchild(p);
                ctx.send(p, encode(tag_reject(), EmptyMsg{}));
            }
            for (std::size_t p = 0; p < ports_.size(); ++p) {
                if (ports_[p] == PortState::Unknown)
                    ctx.send(p, encode(tag_explore(), BfsExploreMsg{depth_}));
            }
        }
    } else {
        // Already in the tree: a late explorer closed a cycle.
        for (std::size_t p : explorers_this_round) {
            if (ports_[p] == PortState::Unknown)
                resolve_nonchild(p);
            ctx.send(p, encode(tag_reject(), EmptyMsg{}));
        }
    }

    // Pass 2: echoes (a leaf child may ACCEPT and ECHO in the same round).
    for (const Incoming& in : ctx.inbox()) {
        if (!handles(in.msg.tag) || in.msg.tag != tag_echo())
            continue;
        DMST_ASSERT_MSG(ports_[in.port] == PortState::Child,
                        "ECHO from a non-child port");
        auto echo = decode<BfsEchoMsg>(in.msg);
        child_sizes_[in.port] = echo.subtree_size;
        subtree_size_ += echo.subtree_size;
        subtree_height_ = std::max(
            subtree_height_, static_cast<std::uint32_t>(echo.height) + 1);
        ++echoes_received_;
    }

    maybe_echo(ctx);
}

void MarkedTreeBuilder::maybe_echo(Context& ctx)
{
    if (!joined_ || echo_sent_ || unresolved_ports_ > 0)
        return;
    if (echoes_received_ < children_ports_.size())
        return;
    echo_sent_ = true;
    if (parent_port_ != kNoPort)
        ctx.send(parent_port_,
                 encode(tag_echo(), BfsEchoMsg{subtree_size_, subtree_height_}));
    finished_ = true;
}

// -------------------------------------------------------- PathMaxTokens

void PathMaxTokens::attach(std::uint64_t own_index, Interval own_interval,
                           std::size_t parent_port, EdgeKey parent_edge)
{
    DMST_ASSERT_MSG(!attached_, "attach() called twice");
    attached_ = true;
    own_index_ = own_index;
    own_interval_ = own_interval;
    parent_port_ = parent_port;
    parent_edge_ = parent_edge;
}

void PathMaxTokens::inject(std::uint64_t pair, const EdgeKey& key)
{
    DMST_ASSERT_MSG(attached_, "inject() before attach()");
    absorb(pair, key, kMinEdgeKey);
}

void PathMaxTokens::absorb(std::uint64_t pair, const EdgeKey& key,
                           const EdgeKey& max_seen)
{
    const std::uint64_t lo = pair >> 32;
    const std::uint64_t hi = pair & 0xFFFFFFFFULL;
    if (!own_interval_.contains(lo) || !own_interval_.contains(hi)) {
        // Not a common ancestor yet: keep climbing.
        DMST_ASSERT_MSG(parent_port_ != kNoPort,
                        "token missed every interval on the way to the root");
        queue_.push_back(Half{pair, key, max_seen});
        return;
    }
    auto it = pending_.find(pair);
    if (it == pending_.end()) {
        pending_.emplace(pair, Half{pair, key, max_seen});
        return;
    }
    // Second half arrived: the pair resolves here, at the LCA.
    DMST_ASSERT_MSG(it->second.key == key, "paired tokens disagree on the query");
    EdgeKey path_max = std::max(max_seen, it->second.max_seen);
    pending_.erase(it);
    ++pairs_completed_;
    if (path_max > key) {
        CycleMaxViolation found{path_max, key};
        if (std::tie(found.witness, found.offender) <
            std::tie(violation_.witness, violation_.offender))
            violation_ = found;
    }
}

void PathMaxTokens::on_round(Context& ctx)
{
    for (const Incoming& in : ctx.inbox()) {
        if (!handles(in.msg.tag))
            continue;
        DMST_ASSERT_MSG(attached_, "token traffic before attach()");
        auto m = decode<PathTokenMsg>(in.msg);
        absorb(m.pair, m.key, m.max_seen);
    }
    if (!attached_)
        return;

    // Climb one hop, charging the traversed claimed edge into the running
    // max at send time (the receiver absorbs verbatim).
    if (queue_.empty())
        return;
    const int budget = ctx.bandwidth(parent_port_);
    int sent = 0;
    while (sent < budget && !queue_.empty()) {
        const Half& h = queue_.front();
        ctx.send(parent_port_,
                 encode(tag_, PathTokenMsg{h.pair, h.key,
                                           std::max(h.max_seen, parent_edge_)}));
        queue_.pop_front();
        ++sent;
    }
}

}  // namespace dmst
