#include "dmst/proto/pipeline.h"

#include <algorithm>

#include "dmst/congest/codec.h"
#include "dmst/util/assert.h"

namespace dmst {

// ---------------------------------------------------------- DsuCycleFilter

std::size_t DsuCycleFilter::index_of(std::uint64_t group)
{
    auto it = index_.find(group);
    if (it != index_.end())
        return it->second;
    std::size_t idx = used_++;
    index_.emplace(group, idx);
    if (!dsu_ || idx >= dsu_->size()) {
        // Rebuild with doubled capacity, replaying the established unions.
        std::size_t capacity = std::max<std::size_t>(16, (idx + 1) * 2);
        auto grown = std::make_unique<Dsu>(capacity);
        if (dsu_) {
            for (std::size_t i = 0; i < dsu_->size(); ++i)
                grown->unite(i, dsu_->find(i));
        }
        dsu_ = std::move(grown);
    }
    return idx;
}

bool DsuCycleFilter::admits(const PipeRecord& r)
{
    // Resolve both indices before touching dsu_: index_of() may grow it.
    std::size_t a = index_of(r.group);
    std::size_t b = index_of(r.group2);
    return dsu_->find(a) != dsu_->find(b);
}

void DsuCycleFilter::on_emit(const PipeRecord& r)
{
    std::size_t a = index_of(r.group);
    std::size_t b = index_of(r.group2);
    dsu_->unite(a, b);
}

// -------------------------------------------------------- SortedMergeUpcast

SortedMergeUpcast::SortedMergeUpcast(std::uint32_t tag_base,
                                     std::unique_ptr<UpcastFilter> filter)
    : tag_base_(tag_base), filter_(std::move(filter))
{
    DMST_ASSERT(filter_ != nullptr);
}

void SortedMergeUpcast::attach(std::size_t parent_port,
                               std::vector<std::size_t> children_ports)
{
    DMST_ASSERT_MSG(!attached_, "attach() called twice");
    attached_ = true;
    parent_port_ = parent_port;
    children_.reserve(children_ports.size());
    for (std::size_t p : children_ports)
        children_.push_back(ChildStream{p, std::nullopt, false});
}

void SortedMergeUpcast::add_local(const PipeRecord& r)
{
    DMST_ASSERT_MSG(!local_closed_, "add_local() after close_local()");
    buffer_.emplace(pipe_sort_key(r), r);
}

void SortedMergeUpcast::close_local()
{
    local_closed_ = true;
}

Message SortedMergeUpcast::serialize(const PipeRecord& r) const
{
    return encode(tag_record(),
                  PipeRecordMsg{r.key, r.group, r.group2, r.aux});
}

PipeRecord SortedMergeUpcast::deserialize(const Message& m)
{
    auto p = decode<PipeRecordMsg>(m);
    return PipeRecord{p.key, p.group, p.group2, p.aux};
}

bool SortedMergeUpcast::safe_to_emit(const PipeSortKey& k) const
{
    if (!local_closed_)
        return false;
    for (const ChildStream& c : children_) {
        if (c.done)
            continue;
        if (!c.frontier.has_value() || k > *c.frontier)
            return false;  // the child could still deliver something smaller
    }
    return true;
}

void SortedMergeUpcast::on_round(Context& ctx)
{
    // Ingest child records and DONE sentinels.
    for (const Incoming& in : ctx.inbox()) {
        if (!handles(in.msg.tag))
            continue;
        DMST_ASSERT_MSG(attached_, "upcast traffic before attach()");
        auto child = std::find_if(children_.begin(), children_.end(),
                                  [&](const ChildStream& c) {
                                      return c.port == in.port;
                                  });
        DMST_ASSERT_MSG(child != children_.end(),
                        "upcast message from a non-child port");
        if (in.msg.tag == tag_done()) {
            child->done = true;
            continue;
        }
        PipeRecord r = deserialize(in.msg);
        PipeSortKey k = pipe_sort_key(r);
        DMST_ASSERT_MSG(!child->frontier || k > *child->frontier,
                        "child stream not sorted");
        child->frontier = k;
        if (filter_->admits(r))
            buffer_.emplace(k, r);
    }

    if (!attached_)
        return;

    // Emit up to `bandwidth` records, globally smallest first — paced by
    // the parent link's own budget, which a conditioner may cap below b.
    const int budget = parent_port_ != kNoPort ? ctx.bandwidth(parent_port_)
                                               : ctx.bandwidth();
    int sent = 0;
    while (sent < budget && !buffer_.empty()) {
        auto it = buffer_.begin();
        if (!filter_->admits(it->second)) {
            buffer_.erase(it);  // superseded since insertion
            continue;
        }
        if (!safe_to_emit(it->first))
            break;
        if (parent_port_ != kNoPort)
            ctx.send(parent_port_, serialize(it->second));
        else
            delivered_.push_back(it->second);
        filter_->on_emit(it->second);
        buffer_.erase(it);
        ++sent;
    }

    // Propagate exhaustion. The DONE shares the round's record budget so
    // the per-edge word cap is respected.
    if (!done_sent_ && parent_port_ != kNoPort && sent < budget && local_closed_ &&
        buffer_.empty() &&
        std::all_of(children_.begin(), children_.end(),
                    [](const ChildStream& c) { return c.done; })) {
        ctx.send(parent_port_, encode(tag_done(), EmptyMsg{}));
        done_sent_ = true;
    }
}

bool SortedMergeUpcast::finished() const
{
    if (parent_port_ != kNoPort)
        return done_sent_;
    return attached_ && local_closed_ && buffer_.empty() &&
           std::all_of(children_.begin(), children_.end(),
                       [](const ChildStream& c) { return c.done; });
}

}  // namespace dmst
