#include "dmst/proto/bfs.h"

#include <algorithm>

#include "dmst/congest/codec.h"
#include "dmst/util/assert.h"

namespace dmst {

BfsBuilder::BfsBuilder(bool is_root, std::uint32_t tag_base, std::uint64_t start_round)
    : is_root_(is_root), tag_base_(tag_base), start_round_(start_round)
{
}

void BfsBuilder::join(Context& ctx, std::uint32_t depth, std::size_t parent_port)
{
    DMST_ASSERT(!joined_);
    joined_ = true;
    depth_ = depth;
    parent_port_ = parent_port;
    if (parent_port != kNoPort) {
        ports_[parent_port] = PortState::Parent;
        --unresolved_ports_;
        ctx.send(parent_port, encode(tag_accept(), EmptyMsg{}));
    }
}

void BfsBuilder::on_round(Context& ctx)
{
    if (finished_)
        return;
    if (ports_.empty() && ctx.degree() > 0) {
        ports_.assign(ctx.degree(), PortState::Unknown);
        unresolved_ports_ = ctx.degree();
    }

    // Pass 1: exploration traffic (EXPLORE / ACCEPT / REJECT).
    std::vector<std::size_t> explorers_this_round;
    for (const Incoming& in : ctx.inbox()) {
        if (!handles(in.msg.tag))
            continue;
        if (in.msg.tag == tag_explore()) {
            explorers_this_round.push_back(in.port);
        } else if (in.msg.tag == tag_accept()) {
            DMST_ASSERT(ports_[in.port] == PortState::Unknown);
            ports_[in.port] = PortState::Child;
            children_ports_.push_back(in.port);
            --unresolved_ports_;
        } else if (in.msg.tag == tag_reject()) {
            // Crossing EXPLOREs can resolve a port before the REJECT lands;
            // only an Unknown port still needs resolving.
            if (ports_[in.port] == PortState::Unknown) {
                ports_[in.port] = PortState::NonChild;
                --unresolved_ports_;
            }
        }
    }

    if (!joined_) {
        if (is_root_ && ctx.round() >= start_round_) {
            join(ctx, 0, kNoPort);
        } else if (!explorers_this_round.empty()) {
            // All EXPLOREs arriving in the join round come from vertices at
            // depth d-1; pick the smallest port as parent.
            std::size_t parent = *std::min_element(explorers_this_round.begin(),
                                                   explorers_this_round.end());
            const Incoming* parent_msg = nullptr;
            for (const Incoming& in : ctx.inbox()) {
                if (handles(in.msg.tag) && in.msg.tag == tag_explore() &&
                    in.port == parent) {
                    parent_msg = &in;
                    break;
                }
            }
            DMST_ASSERT(parent_msg != nullptr);
            auto explore = decode<BfsExploreMsg>(parent_msg->msg);
            join(ctx, static_cast<std::uint32_t>(explore.depth) + 1, parent);
        }
        if (joined_) {
            // Reject the other same-round explorers; explore silent ports.
            for (std::size_t p : explorers_this_round) {
                if (p == parent_port_)
                    continue;
                DMST_ASSERT(ports_[p] == PortState::Unknown);
                ports_[p] = PortState::NonChild;
                --unresolved_ports_;
                ctx.send(p, encode(tag_reject(), EmptyMsg{}));
            }
            for (std::size_t p = 0; p < ports_.size(); ++p) {
                if (ports_[p] == PortState::Unknown)
                    ctx.send(p, encode(tag_explore(), BfsExploreMsg{depth_}));
            }
        }
    } else {
        // Already in the tree: refuse any late explorer.
        for (std::size_t p : explorers_this_round) {
            if (ports_[p] == PortState::Unknown) {
                ports_[p] = PortState::NonChild;
                --unresolved_ports_;
            }
            ctx.send(p, encode(tag_reject(), EmptyMsg{}));
        }
    }

    // Pass 2: echoes (a leaf child may ACCEPT and ECHO in the same round,
    // so echoes are processed after the ACCEPTs above).
    for (const Incoming& in : ctx.inbox()) {
        if (!handles(in.msg.tag) || in.msg.tag != tag_echo())
            continue;
        DMST_ASSERT_MSG(ports_[in.port] == PortState::Child,
                        "ECHO from a non-child port");
        auto echo = decode<BfsEchoMsg>(in.msg);
        child_sizes_[in.port] = echo.subtree_size;
        subtree_size_ += echo.subtree_size;
        subtree_height_ = std::max(
            subtree_height_, static_cast<std::uint32_t>(echo.height) + 1);
        ++echoes_received_;
    }

    maybe_echo(ctx);
}

void BfsBuilder::maybe_echo(Context& ctx)
{
    if (!joined_ || echo_sent_ || unresolved_ports_ > 0)
        return;
    if (echoes_received_ < children_ports_.size())
        return;
    echo_sent_ = true;
    if (parent_port_ != kNoPort)
        ctx.send(parent_port_,
                 encode(tag_echo(), BfsEchoMsg{subtree_size_, subtree_height_}));
    finished_ = true;
}

}  // namespace dmst
