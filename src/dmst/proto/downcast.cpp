#include "dmst/proto/downcast.h"

#include "dmst/congest/codec.h"
#include "dmst/util/assert.h"

namespace dmst {

void IntervalDowncast::attach(std::uint64_t own_index,
                              std::vector<std::size_t> children_ports,
                              std::vector<Interval> child_intervals)
{
    DMST_ASSERT_MSG(!attached_, "attach() called twice");
    DMST_ASSERT(children_ports.size() == child_intervals.size());
    attached_ = true;
    own_index_ = own_index;
    children_ports_ = std::move(children_ports);
    child_intervals_ = std::move(child_intervals);
    queues_.resize(children_ports_.size());
}

void IntervalDowncast::route(const DownRecord& r)
{
    if (r.target == own_index_) {
        delivered_.push_back(r);
        return;
    }
    for (std::size_t i = 0; i < child_intervals_.size(); ++i) {
        if (child_intervals_[i].contains(r.target)) {
            queues_[i].push_back(r);
            return;
        }
    }
    DMST_ASSERT_MSG(false, "downcast target not in any child interval");
}

void IntervalDowncast::inject(const DownRecord& r)
{
    DMST_ASSERT_MSG(attached_, "inject() before attach()");
    route(r);
}

void IntervalDowncast::on_round(Context& ctx)
{
    for (const Incoming& in : ctx.inbox()) {
        if (!handles(in.msg.tag))
            continue;
        DMST_ASSERT_MSG(attached_, "downcast traffic before attach()");
        auto m = decode<DownRecordMsg>(in.msg);
        route(DownRecord{m.target, m.payload});
    }
    if (!attached_)
        return;

    for (std::size_t i = 0; i < queues_.size(); ++i) {
        // Per-link record budget: the conditioner may cap a child edge
        // below the global b.
        const int budget = ctx.bandwidth(children_ports_[i]);
        int sent = 0;
        while (sent < budget && !queues_[i].empty()) {
            const DownRecord& r = queues_[i].front();
            ctx.send(children_ports_[i],
                     encode(tag_base_, DownRecordMsg{r.target, r.payload}));
            queues_[i].pop_front();
            ++sent;
        }
    }
}

bool IntervalDowncast::idle() const
{
    for (const auto& q : queues_)
        if (!q.empty())
            return false;
    return true;
}

}  // namespace dmst
