#ifndef DMST_PROTO_CV_H
#define DMST_PROTO_CV_H

#include <cstdint>
#include <vector>

namespace dmst {

// Cole–Vishkin deterministic coin tossing [CV86], used by Controlled-GHS to
// 3-color the candidate fragment forest in O(log* n) steps. The pure color
// algebra lives here so the distributed implementation (inside
// controlled_ghs.cpp) and the sequential reference below share it exactly.

// One DCT step: the new color derived from own and parent colors (which
// must differ). If own and parent first differ at bit j, the new color is
// 2j + bit_j(own). Colors drop from K to O(log K) per step.
std::uint64_t cv_step(std::uint64_t own, std::uint64_t parent);

// DCT step for a forest root: pretends the parent color differs at bit 0.
std::uint64_t cv_step_root(std::uint64_t own);

// The shift-down + recolor step that removes color `c` (one of 5, 4, 3)
// from a {0..5} coloring. After shifting every vertex to its parent's old
// color (roots pick `cv_root_shift_color`), a vertex whose shifted color is
// c recolors to the smallest of {0,1,2} not used by its (shifted) parent
// nor by its children (whose shifted color is exactly the vertex's old
// color). These helpers compute the two local decisions:
std::uint64_t cv_root_shift_color(std::uint64_t old_color);
std::uint64_t cv_recolor(std::uint64_t shifted_parent_color,
                         std::uint64_t old_own_color, bool has_parent);

// Sequential reference: 3-colors a rooted forest given parent indices
// (parent[v] == v marks roots). Returns the coloring and the number of DCT
// iterations used (Theorem: O(log* n) + O(1)).
struct CvForestColoring {
    std::vector<std::uint64_t> colors;  // values in {0, 1, 2}
    int dct_iterations = 0;
};

CvForestColoring cv_three_color_forest(const std::vector<std::size_t>& parent);

// Number of DCT iterations after which any coloring with ids below 2^64 is
// guaranteed to be in {0..5}: a safe fixed schedule for the distributed
// variant, which cannot inspect the global maximum color.
int cv_dct_iterations_bound(std::uint64_t n);

}  // namespace dmst

#endif  // DMST_PROTO_CV_H
