#ifndef DMST_PROTO_DOWNCAST_H
#define DMST_PROTO_DOWNCAST_H

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "dmst/congest/network.h"
#include "dmst/proto/bfs.h"

namespace dmst {

// Half-open routing interval [lo, hi) of preorder indices.
struct Interval {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool contains(std::uint64_t x) const { return lo <= x && x < hi; }
    std::uint64_t size() const { return hi - lo; }
};

// A point-to-point message routed down a preorder-labelled tree. `target`
// is the preorder index of the destination vertex.
struct DownRecord {
    std::uint64_t target = 0;
    std::array<std::uint64_t, 4> payload{};
};

// Pipelined interval-routed downcast ("each such message (F, F') has the
// destination interval I(rt_F) attached to it, and is routed along the
// unique rt-rt_F path in τ"). The root injects records; every vertex
// forwards each record to the unique child whose interval contains the
// target, at most `bandwidth` records per child edge per round. Note that
// this sends each message only along its own root-destination path rather
// than broadcasting it — ablation E10b quantifies the message savings.
class IntervalDowncast {
public:
    explicit IntervalDowncast(std::uint32_t tag_base) : tag_base_(tag_base) {}

    // Installs this vertex's preorder index and its children's intervals
    // (parallel arrays). Must be called before traffic arrives.
    void attach(std::uint64_t own_index, std::vector<std::size_t> children_ports,
                std::vector<Interval> child_intervals);
    bool attached() const { return attached_; }

    // Enqueues a record for routing from this vertex (typically the root).
    void inject(const DownRecord& r);

    void on_round(Context& ctx);

    bool handles(std::uint32_t tag) const { return tag == tag_base_; }

    // Records addressed to this vertex, in arrival order.
    const std::vector<DownRecord>& delivered() const { return delivered_; }

    // No queued records at this vertex (global quiescence is the owner's
    // concern: receivers act on delivery, so no barrier is needed).
    bool idle() const;

private:
    void route(const DownRecord& r);

    std::uint32_t tag_base_;
    bool attached_ = false;
    std::uint64_t own_index_ = 0;
    std::vector<std::size_t> children_ports_;
    std::vector<Interval> child_intervals_;
    std::vector<std::deque<DownRecord>> queues_;  // per child
    std::vector<DownRecord> delivered_;
};

}  // namespace dmst

#endif  // DMST_PROTO_DOWNCAST_H
