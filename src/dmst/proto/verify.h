#ifndef DMST_PROTO_VERIFY_H
#define DMST_PROTO_VERIFY_H

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dmst/congest/network.h"
#include "dmst/proto/bfs.h"
#include "dmst/proto/downcast.h"

namespace dmst {

// Pipelined primitives of the distributed MST verification protocol
// (core/verify_mst.{h,cpp} is the driver): a BFS restricted to the claimed
// edge set, and the cycle-max query tokens that climb the claimed tree.
// Both are embeddable components in the BfsBuilder mold — the owning
// Process forwards every round and each component reads only its own tags.

// BFS tree construction restricted to a marked subset of each vertex's
// ports — the fragment labeling step of MST verification: exploring only
// claimed edges from the root discovers the root's claimed component, and
// every claimed edge that resolves as a non-child closed a cycle among
// claimed edges (both endpoints were already in the tree), which localizes
// a cycle witness at its endpoints.
//
// Wire shapes are shared with BfsBuilder (EXPLORE carries the sender
// depth, ECHO the subtree size and height); the tags differ. Vertices
// outside the root's marked component never join and never echo — the
// root's echo completing means exactly its component is resolved, which
// is the signal the verification driver acts on.
class MarkedTreeBuilder {
public:
    // Tags used: tag_base + {0 EXPLORE, 1 ACCEPT, 2 REJECT, 3 ECHO}.
    MarkedTreeBuilder(bool is_root, std::uint32_t tag_base,
                      std::uint64_t start_round);

    // Installs the marked-port mask (one entry per port). Must be called
    // before start_round and before any traffic arrives.
    void attach(std::vector<std::uint8_t> marked);
    bool attached() const { return attached_; }

    void on_round(Context& ctx);

    bool handles(std::uint32_t tag) const
    {
        return tag >= tag_base_ && tag < tag_base_ + 4;
    }

    // Local completion: joined, all marked ports resolved, echo sent (the
    // root's completion implies its whole marked component completed).
    bool finished() const { return finished_; }
    bool joined() const { return joined_; }

    std::uint32_t depth() const { return depth_; }
    std::size_t parent_port() const { return parent_port_; }
    const std::vector<std::size_t>& children_ports() const { return children_ports_; }

    // Marked ports that resolved as neither parent nor child: each closed
    // a cycle within the marked edge set (cycle witnesses).
    const std::vector<std::size_t>& nonchild_ports() const { return nonchild_ports_; }

    // Valid once finished(): vertices / height of own marked subtree.
    std::uint64_t subtree_size() const { return subtree_size_; }
    std::uint32_t subtree_height() const { return subtree_height_; }
    const std::unordered_map<std::size_t, std::uint64_t>& child_sizes() const
    {
        return child_sizes_;
    }

private:
    enum class PortState : std::uint8_t { Unmarked, Unknown, Parent, Child, NonChild };

    std::uint32_t tag_explore() const { return tag_base_ + 0; }
    std::uint32_t tag_accept() const { return tag_base_ + 1; }
    std::uint32_t tag_reject() const { return tag_base_ + 2; }
    std::uint32_t tag_echo() const { return tag_base_ + 3; }

    void join(Context& ctx, std::uint32_t depth, std::size_t parent_port);
    void resolve_nonchild(std::size_t port);
    void maybe_echo(Context& ctx);

    bool is_root_;
    std::uint32_t tag_base_;
    std::uint64_t start_round_;

    bool attached_ = false;
    bool joined_ = false;
    bool finished_ = false;
    std::uint32_t depth_ = 0;
    std::size_t parent_port_ = kNoPort;
    std::vector<PortState> ports_;
    std::vector<std::size_t> children_ports_;
    std::vector<std::size_t> nonchild_ports_;
    std::size_t unresolved_ports_ = 0;
    std::size_t echoes_received_ = 0;
    std::unordered_map<std::size_t, std::uint64_t> child_sizes_;
    std::uint64_t subtree_size_ = 1;
    std::uint32_t subtree_height_ = 0;
    bool echo_sent_ = false;
};

// A cycle-max violation: `witness` is a claimed tree edge that is heavier
// than `offender`, a non-tree edge whose tree path contains it — swapping
// the two strictly improves the claimed tree, so it is not the MST.
struct CycleMaxViolation {
    EdgeKey witness = kInfiniteEdgeKey;
    EdgeKey offender = kInfiniteEdgeKey;

    bool found() const { return witness != kInfiniteEdgeKey; }
};

// The minimality-check engine at one vertex: path-max query tokens
// aggregated over the claimed-tree hierarchy.
//
// For every non-tree edge (u, v) both endpoints inject one token carrying
// the packed claimed-preorder index pair, the edge's key, and a running
// maximum over claimed edges traversed. Tokens climb toward the claimed
// root — at most `bandwidth` per round per edge, the running max updated
// with the parent edge at each hop — and stop at the first vertex whose
// claimed interval contains both endpoint indices. That vertex is the LCA
// for both halves, so they meet: the pair completes, and the combined
// path maximum must be lighter than the queried edge (the cycle-max
// invariant characterizing the MST), else the violation is recorded.
// Completions are counted (pairs_completed() is monotone) so the driver
// can detect global quiescence by comparing the convergecast total
// against the known number of non-tree edges.
class PathMaxTokens {
public:
    explicit PathMaxTokens(std::uint32_t tag) : tag_(tag) {}

    // Installs this vertex's claimed-preorder position: its own index and
    // interval, and its claimed parent (kNoPort at the claimed root, with
    // `parent_edge` ignored). Must precede inject() and any traffic.
    void attach(std::uint64_t own_index, Interval own_interval,
                std::size_t parent_port, EdgeKey parent_edge);
    bool attached() const { return attached_; }

    // Starts one query half for a non-tree edge incident to this vertex.
    // `pair` packs the two endpoints' claimed indices (lo << 32 | hi);
    // `key` is the non-tree edge. Both endpoints must inject.
    void inject(std::uint64_t pair, const EdgeKey& key);

    void on_round(Context& ctx);

    bool handles(std::uint32_t tag) const { return tag == tag_; }

    // Monotone count of query pairs resolved at this vertex (as the LCA).
    std::uint64_t pairs_completed() const { return pairs_completed_; }

    // The minimal violation found here, ordered by (witness, offender);
    // !found() if every pair resolved at this vertex satisfied the
    // invariant so far.
    const CycleMaxViolation& violation() const { return violation_; }

    // No tokens queued and no unpaired halves held at this vertex.
    bool idle() const { return queue_.empty() && pending_.empty(); }

private:
    struct Half {
        std::uint64_t pair = 0;
        EdgeKey key;
        EdgeKey max_seen;
    };

    // Pairs at this vertex if it is the halves' LCA, else queues upward.
    void absorb(std::uint64_t pair, const EdgeKey& key, const EdgeKey& max_seen);

    std::uint32_t tag_;
    bool attached_ = false;
    std::uint64_t own_index_ = 0;
    Interval own_interval_;
    std::size_t parent_port_ = kNoPort;
    EdgeKey parent_edge_ = kInfiniteEdgeKey;

    std::deque<Half> queue_;                    // climbing toward the root
    std::map<std::uint64_t, Half> pending_;     // first halves awaiting partner
    std::uint64_t pairs_completed_ = 0;
    CycleMaxViolation violation_;
};

}  // namespace dmst

#endif  // DMST_PROTO_VERIFY_H
