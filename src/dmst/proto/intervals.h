#ifndef DMST_PROTO_INTERVALS_H
#define DMST_PROTO_INTERVALS_H

#include <cstdint>
#include <utility>
#include <vector>

#include "dmst/proto/bfs.h"
#include "dmst/proto/downcast.h"
#include "dmst/util/assert.h"

namespace dmst {

// Distributed preorder interval labeling of a BFS tree ("we compute
// intervals I_v for each vertex v ∈ V(τ) such that for every pair u, v
// their intervals are either disjoint or nested"). The root takes [0, n);
// every vertex keeps the first index of its interval as its own preorder
// index and splits the rest among its children in port order, using the
// subtree sizes gathered by the BFS echo. O(D) rounds, O(n) messages.
class IntervalLabeler {
public:
    explicit IntervalLabeler(std::uint32_t tag_base) : tag_base_(tag_base) {}

    // Copies the tree position from any finished tree builder exposing
    // parent_port()/children_ports()/child_sizes()/subtree_size() —
    // BfsBuilder, or the claimed-tree MarkedTreeBuilder of the MST
    // verification protocol (proto/verify.h). For non-roots this must
    // happen before the parent's ASSIGN message arrives; calling it when
    // the builder's local echo completes is always early enough.
    template <typename Builder>
    void attach(const Builder& builder)
    {
        DMST_ASSERT_MSG(builder.finished(), "attach() requires a finished tree");
        std::vector<std::uint64_t> sizes;
        sizes.reserve(builder.children_ports().size());
        for (std::size_t p : builder.children_ports())
            sizes.push_back(builder.child_sizes().at(p));
        attach(builder.parent_port() == kNoPort, builder.children_ports(),
               std::move(sizes), builder.subtree_size());
    }

    // Same, from an explicit tree position (`child_sizes` parallel to
    // `children_ports`).
    void attach(bool is_root, std::vector<std::size_t> children_ports,
                std::vector<std::uint64_t> child_sizes,
                std::uint64_t subtree_size);

    bool attached() const { return attached_; }

    // Root only: assigns [0, n) to itself and starts the downcast.
    void start(Context& ctx);

    void on_round(Context& ctx);

    bool handles(std::uint32_t tag) const { return tag == tag_base_; }

    // Labeled: own interval known (children are informed in the same round).
    bool finished() const { return labeled_; }

    std::uint64_t own_index() const { return own_.lo; }
    Interval own_interval() const { return own_; }
    const std::vector<std::size_t>& children_ports() const { return children_ports_; }
    const std::vector<Interval>& child_intervals() const { return child_intervals_; }

private:
    void assign(Context& ctx, Interval interval);

    std::uint32_t tag_base_;
    bool attached_ = false;
    bool labeled_ = false;
    bool is_root_ = false;
    std::vector<std::size_t> children_ports_;
    std::vector<std::uint64_t> child_sizes_;  // parallel to children_ports_
    std::uint64_t subtree_size_ = 0;
    Interval own_;
    std::vector<Interval> child_intervals_;
};

}  // namespace dmst

#endif  // DMST_PROTO_INTERVALS_H
