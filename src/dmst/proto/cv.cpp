#include "dmst/proto/cv.h"

#include <algorithm>

#include "dmst/util/assert.h"
#include "dmst/util/intmath.h"

namespace dmst {

std::uint64_t cv_step(std::uint64_t own, std::uint64_t parent)
{
    DMST_ASSERT_MSG(own != parent, "cv_step requires a proper coloring");
    int j = trailing_zeros(own ^ parent);
    return 2 * static_cast<std::uint64_t>(j) + ((own >> j) & 1);
}

std::uint64_t cv_step_root(std::uint64_t own)
{
    return cv_step(own, own ^ 1);
}

std::uint64_t cv_root_shift_color(std::uint64_t old_color)
{
    return old_color == 0 ? 1 : 0;
}

std::uint64_t cv_recolor(std::uint64_t shifted_parent_color,
                         std::uint64_t old_own_color, bool has_parent)
{
    for (std::uint64_t c = 0; c <= 2; ++c) {
        if (c == old_own_color)
            continue;  // children's shifted color
        if (has_parent && c == shifted_parent_color)
            continue;
        return c;
    }
    DMST_ASSERT_MSG(false, "no free color in {0,1,2}");
    return 0;
}

int cv_dct_iterations_bound(std::uint64_t n)
{
    if (n <= 1)
        return 0;
    std::uint64_t max_color = n - 1;
    int iterations = 0;
    while (max_color > 5) {
        // With colors <= C the differing bit index is at most floor(log2 C),
        // so the next maximum color is 2*floor(log2 C) + 1.
        int bits = floor_log2(max_color);
        max_color = 2 * static_cast<std::uint64_t>(bits) + 1;
        ++iterations;
    }
    return iterations;
}

CvForestColoring cv_three_color_forest(const std::vector<std::size_t>& parent)
{
    const std::size_t n = parent.size();
    CvForestColoring result;
    result.colors.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
        DMST_ASSERT_MSG(parent[v] < n, "parent index out of range");
        result.colors[v] = v;  // initial colors: distinct ids
    }
    auto is_root = [&](std::size_t v) { return parent[v] == v; };

    // Deterministic coin tossing until every color is in {0..5}.
    auto max_color = [&] {
        return n == 0 ? 0
                      : *std::max_element(result.colors.begin(), result.colors.end());
    };
    std::vector<std::uint64_t> next(n);
    while (max_color() > 5) {
        for (std::size_t v = 0; v < n; ++v) {
            next[v] = is_root(v)
                          ? cv_step_root(result.colors[v])
                          : cv_step(result.colors[v], result.colors[parent[v]]);
        }
        result.colors = next;
        ++result.dct_iterations;
    }

    // Shift-down + recolor to eliminate colors 5, 4, 3.
    std::vector<std::uint64_t> shifted(n);
    for (std::uint64_t c : {std::uint64_t{5}, std::uint64_t{4}, std::uint64_t{3}}) {
        for (std::size_t v = 0; v < n; ++v) {
            shifted[v] = is_root(v) ? cv_root_shift_color(result.colors[v])
                                    : result.colors[parent[v]];
        }
        for (std::size_t v = 0; v < n; ++v) {
            if (shifted[v] == c) {
                next[v] = cv_recolor(is_root(v) ? 0 : shifted[parent[v]],
                                     result.colors[v], !is_root(v));
            } else {
                next[v] = shifted[v];
            }
        }
        result.colors = next;
    }
    return result;
}

}  // namespace dmst
