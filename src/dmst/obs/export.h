#ifndef DMST_OBS_EXPORT_H
#define DMST_OBS_EXPORT_H

#include <iosfwd>
#include <string>

#include "dmst/obs/trace.h"

namespace dmst {

// Trace exporters (scripts/trace_report.py understands both formats):
//
//   chrome  Chrome-trace JSON, loadable in Perfetto (ui.perfetto.dev) or
//           chrome://tracing. One track per driver phase plus one for the
//           α-synchronizer control traffic; spans are complete ("X")
//           events on the logical-round timebase (1 round = 1 µs), with
//           messages/words/ticks/virtual-time in args. A "dmst_totals"
//           metadata event carries the RunStats totals so the report
//           tool can re-check conservation from the file alone.
//
//   jsonl   One self-describing JSON object per line: a "total" row, one
//           "span" row per (phase, level), one "tag" row per codec tag.
//           Lossless: read_trace_jsonl() reconstructs the exact table
//           (the exporter round-trip test relies on that).

void write_chrome_trace(std::ostream& out, const TraceTable& table);
void write_trace_jsonl(std::ostream& out, const TraceTable& table);

// Parses the JSONL format back into a table. Throws std::runtime_error
// on malformed input.
TraceTable read_trace_jsonl(std::istream& in);

// File-opening convenience wrappers; return false if the file cannot be
// opened for writing.
bool write_chrome_trace_file(const std::string& path, const TraceTable& table);
bool write_trace_jsonl_file(const std::string& path, const TraceTable& table);

}  // namespace dmst

#endif  // DMST_OBS_EXPORT_H
