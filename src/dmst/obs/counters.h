#ifndef DMST_OBS_COUNTERS_H
#define DMST_OBS_COUNTERS_H

#include <cstdint>
#include <vector>

#include "dmst/obs/phase.h"

namespace dmst {

// Per-message-tag histogram: messages and words by codec tag. Tags are
// small dense integers (each driver's Tag enum starts at 0), so the
// histogram is a grow-on-demand flat vector — after the first round has
// touched every live tag, add() never allocates again.
class TagHistogram {
public:
    void add(std::uint32_t tag, std::uint64_t words)
    {
        if (messages_.size() <= tag)
            grow(tag);
        ++messages_[tag];
        words_[tag] += words;
    }

    void merge(const TagHistogram& other);
    void clear();

    std::size_t size() const { return messages_.size(); }
    std::uint64_t messages(std::uint32_t tag) const
    {
        return tag < messages_.size() ? messages_[tag] : 0;
    }
    std::uint64_t words(std::uint32_t tag) const
    {
        return tag < words_.size() ? words_[tag] : 0;
    }

private:
    void grow(std::uint32_t tag);

    std::vector<std::uint64_t> messages_;
    std::vector<std::uint64_t> words_;
};

// One span accumulation cell: the recorder's unit of attribution. Every
// traced send/instant lands in exactly one cell (the sender's innermost
// open span, or the Init cell), so summing cells reproduces the RunStats
// totals — the conservation invariant TraceSink::validate() checks.
//
// Round/tick/virtual-time bounds are updated only on *activity* (a send
// or an instant), never by span_begin/span_end alone: idle re-entries of
// a protocol pump must not widen a span, or the async engine's trailing
// inert pulses would break tri-engine trace parity.
struct SpanCell {
    std::uint64_t messages = 0;
    std::uint64_t words = 0;
    std::uint64_t instants = 0;
    // Fault-shim traffic attributed to this span (congest/faults.h):
    // retransmissions and lost transmissions of sends charged here, so
    // per-phase retransmission overhead is directly readable. Conserve
    // against RunStats::retransmissions/::drops like messages do.
    std::uint64_t retransmissions = 0;
    std::uint64_t drops = 0;
    std::uint64_t first_round = kUnset;  // logical rounds (engine-invariant)
    std::uint64_t last_round = 0;
    std::uint64_t first_tick = kUnset;  // substrate ticks (engine-dependent)
    std::uint64_t last_tick = 0;
    std::uint64_t first_vtime = kUnset;  // async virtual time (0 elsewhere)
    std::uint64_t last_vtime = 0;

    static constexpr std::uint64_t kUnset = ~std::uint64_t{0};

    bool touched() const { return messages != 0 || instants != 0; }

    void touch(std::uint64_t round, std::uint64_t tick, std::uint64_t vtime)
    {
        if (round < first_round)
            first_round = round;
        if (round > last_round)
            last_round = round;
        if (tick < first_tick)
            first_tick = tick;
        if (tick > last_tick)
            last_tick = tick;
        if (vtime < first_vtime)
            first_vtime = vtime;
        if (vtime > last_vtime)
            last_vtime = vtime;
    }

    void merge(const SpanCell& other);
};

}  // namespace dmst

#endif  // DMST_OBS_COUNTERS_H
