#include "dmst/obs/counters.h"

#include <algorithm>

namespace dmst {

void TagHistogram::grow(std::uint32_t tag)
{
    messages_.resize(static_cast<std::size_t>(tag) + 1, 0);
    words_.resize(static_cast<std::size_t>(tag) + 1, 0);
}

void TagHistogram::merge(const TagHistogram& other)
{
    if (messages_.size() < other.messages_.size())
        grow(static_cast<std::uint32_t>(other.messages_.size()) - 1);
    for (std::size_t t = 0; t < other.messages_.size(); ++t) {
        messages_[t] += other.messages_[t];
        words_[t] += other.words_[t];
    }
}

void TagHistogram::clear()
{
    std::fill(messages_.begin(), messages_.end(), 0);
    std::fill(words_.begin(), words_.end(), 0);
}

void SpanCell::merge(const SpanCell& other)
{
    messages += other.messages;
    words += other.words;
    instants += other.instants;
    retransmissions += other.retransmissions;
    drops += other.drops;
    first_round = std::min(first_round, other.first_round);
    last_round = std::max(last_round, other.last_round);
    first_tick = std::min(first_tick, other.first_tick);
    last_tick = std::max(last_tick, other.last_tick);
    first_vtime = std::min(first_vtime, other.first_vtime);
    last_vtime = std::max(last_vtime, other.last_vtime);
}

const char* trace_phase_name(TracePhase phase)
{
    switch (phase) {
        case TracePhase::Init: return "init";
        case TracePhase::Bfs: return "bfs";
        case TracePhase::Labeling: return "labeling";
        case TracePhase::Control: return "control";
        case TracePhase::Ghs: return "ghs";
        case TracePhase::Registration: return "registration";
        case TracePhase::Boruvka: return "boruvka";
        case TracePhase::Pipeline: return "pipeline";
        case TracePhase::Finish: return "finish";
        case TracePhase::Hello: return "hello";
        case TracePhase::Spanning: return "spanning";
        case TracePhase::Cut: return "cut";
        case TracePhase::Minimality: return "minimality";
        case TracePhase::Verdict: return "verdict";
        case TracePhase::kCount: break;
    }
    return "unknown";
}

}  // namespace dmst
