#ifndef DMST_OBS_PHASE_H
#define DMST_OBS_PHASE_H

#include <cstdint>

namespace dmst {

// Driver-phase taxonomy of the tracing layer (obs/trace.h). One shared
// enum across all five drivers so traces of different algorithms line up
// in the same report: a span is keyed by (phase, level), where the level
// disambiguates repeated phases (the Controlled-GHS phase index i, the
// Boruvka phase index j); single-shot phases use level 0.
//
// This header is deliberately leaf (no includes beyond <cstdint>): the
// engine substrate (congest/network_base.h) needs the enum for the
// Context trace hooks without pulling in the recorder.
enum class TracePhase : std::uint8_t {
    Init = 0,      // sends outside any driver span (default attribution)
    Bfs,           // BFS-tree construction (the tau tree / verify tau)
    Labeling,      // preorder interval labeling of tau
    Control,       // driver control waves before phase 2 (e.g. START_GHS)
    Ghs,           // Controlled-GHS; level = GHS phase index i
    Registration,  // base-fragment registration convergecast
    Boruvka,       // Boruvka-over-fragments; level = phase index j
    Pipeline,      // pipelined edge upcast of the GKP-style baseline
    Finish,        // termination wave
    Hello,         // verify_mst: port-mark exchange
    Spanning,      // verify_mst: spanning/symmetry/acyclicity snapshot
    Cut,           // verify_mst: cut (connectivity witness) stage
    Minimality,    // verify_mst: token/index minimality stage
    Verdict,       // verify_mst: verdict broadcast
    kCount
};

const char* trace_phase_name(TracePhase phase);

// Tracing options carried by NetConfig. Disabled by default: the engines'
// datapath then pays exactly one null-pointer test per send and performs
// no allocation (the counting-allocator test pins that down).
struct TraceConfig {
    bool enabled = false;
};

}  // namespace dmst

#endif  // DMST_OBS_PHASE_H
