#include "dmst/obs/export.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dmst {

namespace {

TracePhase parse_trace_phase(const std::string& name)
{
    for (int p = 0; p < static_cast<int>(TracePhase::kCount); ++p) {
        TracePhase ph = static_cast<TracePhase>(p);
        if (name == trace_phase_name(ph))
            return ph;
    }
    throw std::runtime_error("unknown trace phase '" + name + "'");
}

// Minimal field extraction from one flat JSON object line of our own
// emitter (numbers and plain strings only — the format is fixed, this is
// not a general JSON parser).
bool find_raw(const std::string& line, const std::string& key,
              std::string& out)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    std::size_t i = at + needle.size();
    std::size_t end = i;
    while (end < line.size() && line[end] != ',' && line[end] != '}')
        ++end;
    out = line.substr(i, end - i);
    return true;
}

std::uint64_t get_u64(const std::string& line, const std::string& key)
{
    std::string raw;
    if (!find_raw(line, key, raw))
        throw std::runtime_error("trace jsonl: missing field '" + key +
                                 "' in: " + line);
    return std::stoull(raw);
}

// Fields added after the format's first release (the fault counters) are
// read permissively so older trace files stay loadable.
std::uint64_t get_u64_or(const std::string& line, const std::string& key,
                         std::uint64_t fallback)
{
    std::string raw;
    if (!find_raw(line, key, raw))
        return fallback;
    return std::stoull(raw);
}

std::string get_string(const std::string& line, const std::string& key)
{
    std::string raw;
    if (!find_raw(line, key, raw) || raw.size() < 2 || raw.front() != '"' ||
        raw.back() != '"')
        throw std::runtime_error("trace jsonl: missing string field '" + key +
                                 "' in: " + line);
    return raw.substr(1, raw.size() - 2);
}

void span_args_json(std::ostream& out, const TraceSpan& s)
{
    out << "\"messages\":" << s.messages << ",\"words\":" << s.words
        << ",\"instants\":" << s.instants
        << ",\"retransmissions\":" << s.retransmissions
        << ",\"drops\":" << s.drops
        << ",\"first_round\":" << s.first_round
        << ",\"last_round\":" << s.last_round
        << ",\"first_tick\":" << s.first_tick
        << ",\"last_tick\":" << s.last_tick
        << ",\"first_vtime\":" << s.first_vtime
        << ",\"last_vtime\":" << s.last_vtime;
}

}  // namespace

void write_trace_jsonl(std::ostream& out, const TraceTable& table)
{
    out << "{\"type\":\"total\",\"messages\":" << table.total_messages
        << ",\"words\":" << table.total_words
        << ",\"rounds\":" << table.total_rounds
        << ",\"sync_messages\":" << table.sync_messages
        << ",\"sync_words\":" << table.sync_words
        << ",\"retransmissions\":" << table.total_retransmissions
        << ",\"drops\":" << table.total_drops << "}\n";
    for (const TraceSpan& s : table.spans) {
        out << "{\"type\":\"span\",\"phase\":\"" << trace_phase_name(s.phase)
            << "\",\"level\":" << s.level << ",";
        span_args_json(out, s);
        out << "}\n";
    }
    for (const TagCount& t : table.tags)
        out << "{\"type\":\"tag\",\"tag\":" << t.tag
            << ",\"messages\":" << t.messages << ",\"words\":" << t.words
            << "}\n";
}

TraceTable read_trace_jsonl(std::istream& in)
{
    TraceTable table;
    bool saw_total = false;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const std::string type = get_string(line, "type");
        if (type == "total") {
            table.total_messages = get_u64(line, "messages");
            table.total_words = get_u64(line, "words");
            table.total_rounds = get_u64(line, "rounds");
            table.sync_messages = get_u64(line, "sync_messages");
            table.sync_words = get_u64(line, "sync_words");
            table.total_retransmissions = get_u64_or(line, "retransmissions", 0);
            table.total_drops = get_u64_or(line, "drops", 0);
            saw_total = true;
        } else if (type == "span") {
            TraceSpan s;
            s.phase = parse_trace_phase(get_string(line, "phase"));
            s.level = static_cast<std::int64_t>(get_u64(line, "level"));
            s.messages = get_u64(line, "messages");
            s.words = get_u64(line, "words");
            s.instants = get_u64(line, "instants");
            s.retransmissions = get_u64_or(line, "retransmissions", 0);
            s.drops = get_u64_or(line, "drops", 0);
            s.first_round = get_u64(line, "first_round");
            s.last_round = get_u64(line, "last_round");
            s.first_tick = get_u64(line, "first_tick");
            s.last_tick = get_u64(line, "last_tick");
            s.first_vtime = get_u64(line, "first_vtime");
            s.last_vtime = get_u64(line, "last_vtime");
            table.spans.push_back(s);
        } else if (type == "tag") {
            TagCount t;
            t.tag = static_cast<std::uint32_t>(get_u64(line, "tag"));
            t.messages = get_u64(line, "messages");
            t.words = get_u64(line, "words");
            table.tags.push_back(t);
        } else {
            throw std::runtime_error("trace jsonl: unknown row type '" + type +
                                     "'");
        }
    }
    if (!saw_total)
        throw std::runtime_error("trace jsonl: no total row");
    return table;
}

void write_chrome_trace(std::ostream& out, const TraceTable& table)
{
    // Timebase: 1 logical round = 1 µs of trace time; Perfetto renders the
    // dur of each (phase, level) span on its phase's track.
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            out << ",";
        first = false;
        out << "\n ";
    };

    constexpr int kSyncTid = 64;  // past every TracePhase value
    bool phase_used[static_cast<int>(TracePhase::kCount)] = {};
    for (const TraceSpan& s : table.spans)
        phase_used[static_cast<int>(s.phase)] = true;
    for (int p = 0; p < static_cast<int>(TracePhase::kCount); ++p) {
        if (!phase_used[p])
            continue;
        sep();
        out << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << p
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
            << trace_phase_name(static_cast<TracePhase>(p)) << "\"}}";
    }
    if (table.sync_messages > 0) {
        sep();
        out << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << kSyncTid
            << ",\"name\":\"thread_name\",\"args\":{\"name\":"
               "\"synchronizer\"}}";
    }

    for (const TraceSpan& s : table.spans) {
        const std::uint64_t dur =
            s.last_round >= s.first_round ? s.last_round - s.first_round + 1 : 1;
        sep();
        out << "{\"ph\":\"X\",\"pid\":0,\"tid\":"
            << static_cast<int>(s.phase) << ",\"name\":\""
            << trace_phase_name(s.phase) << "/" << s.level
            << "\",\"ts\":" << s.first_round << ",\"dur\":" << dur
            << ",\"args\":{\"level\":" << s.level << ",";
        span_args_json(out, s);
        out << "}}";
    }

    if (table.sync_messages > 0) {
        sep();
        out << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << kSyncTid
            << ",\"name\":\"sync\",\"ts\":0,\"dur\":"
            << std::max<std::uint64_t>(table.total_rounds, 1)
            << ",\"args\":{\"sync_messages\":" << table.sync_messages
            << ",\"sync_words\":" << table.sync_words << "}}";
    }

    // Totals ride along as a global instant event so trace_report.py can
    // re-check conservation from the exported file alone.
    sep();
    out << "{\"ph\":\"I\",\"pid\":0,\"ts\":0,\"s\":\"g\",\"name\":"
           "\"dmst_totals\",\"args\":{\"messages\":"
        << table.total_messages << ",\"words\":" << table.total_words
        << ",\"rounds\":" << table.total_rounds
        << ",\"sync_messages\":" << table.sync_messages
        << ",\"sync_words\":" << table.sync_words
        << ",\"retransmissions\":" << table.total_retransmissions
        << ",\"drops\":" << table.total_drops << "}}";

    out << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path, const TraceTable& table)
{
    std::ofstream out(path);
    if (!out)
        return false;
    write_chrome_trace(out, table);
    return static_cast<bool>(out);
}

bool write_trace_jsonl_file(const std::string& path, const TraceTable& table)
{
    std::ofstream out(path);
    if (!out)
        return false;
    write_trace_jsonl(out, table);
    return static_cast<bool>(out);
}

}  // namespace dmst
