#include "dmst/obs/trace.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "dmst/util/assert.h"

namespace dmst {

// ------------------------------------------------------------- TraceTable

const TraceSpan* TraceTable::find(TracePhase phase, std::int64_t level) const
{
    for (const TraceSpan& s : spans)
        if (s.phase == phase && s.level == level)
            return &s;
    return nullptr;
}

std::uint64_t TraceTable::phase_messages(TracePhase phase) const
{
    std::uint64_t sum = 0;
    for (const TraceSpan& s : spans)
        if (s.phase == phase)
            sum += s.messages;
    return sum;
}

void TraceTable::validate() const
{
    std::uint64_t span_messages = 0, span_words = 0;
    std::uint64_t span_retrans = 0, span_drops = 0;
    for (const TraceSpan& s : spans) {
        span_messages += s.messages;
        span_words += s.words;
        span_retrans += s.retransmissions;
        span_drops += s.drops;
    }
    if (span_retrans != total_retransmissions || span_drops != total_drops) {
        std::ostringstream oss;
        oss << "trace fault conservation violated: spans " << span_retrans
            << " retransmissions / " << span_drops << " drops, RunStats "
            << total_retransmissions << " / " << total_drops;
        throw InvariantViolation(oss.str());
    }
    std::uint64_t tag_messages = 0, tag_words = 0;
    for (const TagCount& t : tags) {
        tag_messages += t.messages;
        tag_words += t.words;
    }
    if (span_messages != total_messages || span_words != total_words ||
        tag_messages != total_messages || tag_words != total_words) {
        std::ostringstream oss;
        oss << "trace conservation violated: spans " << span_messages
            << " msg / " << span_words << " words, tags " << tag_messages
            << " msg / " << tag_words << " words, RunStats "
            << total_messages << " msg / " << total_words << " words;";
        for (const TraceSpan& s : spans)
            oss << " " << trace_phase_name(s.phase) << "/" << s.level << "="
                << s.messages;
        throw InvariantViolation(oss.str());
    }
}

std::string TraceTable::parity_fingerprint() const
{
    std::ostringstream oss;
    for (const TraceSpan& s : spans) {
        oss << trace_phase_name(s.phase) << " " << s.level << " "
            << s.first_round << " " << s.last_round << " " << s.messages
            << " " << s.words << " " << s.instants << "\n";
    }
    return oss.str();
}

// ---------------------------------------------------------- TraceRecorder

TraceRecorder::TraceRecorder(std::size_t vertex_count)
{
    stack_.resize(vertex_count);
    set_sharding(1, {});
}

void TraceRecorder::set_sharding(int shards, const std::vector<int>& shard_of)
{
    DMST_ASSERT(shards >= 1);
    shard_of_ = shard_of;
    shards_.clear();
    shards_.resize(static_cast<std::size_t>(shards));
    for (Shard& sh : shards_) {
        // Cell 0 is the Init cell: the attribution target of sends made
        // outside any driver span, so conservation holds by construction.
        sh.cells.emplace_back();
        sh.keys.push_back(span_key(TracePhase::Init, 0));
        sh.index.emplace(sh.keys.back(), kInitCell);
    }
}

std::uint64_t TraceRecorder::span_key(TracePhase phase, std::int64_t level)
{
    DMST_ASSERT_MSG(level >= 0 && level < (std::int64_t{1} << 48),
                    "span level out of range");
    return (static_cast<std::uint64_t>(phase) << 48) |
           static_cast<std::uint64_t>(level);
}

std::uint32_t TraceRecorder::cell_for(Shard& sh, TracePhase phase,
                                      std::int64_t level)
{
    const std::uint64_t key = span_key(phase, level);
    // find-then-insert: emplace would allocate its node even on a hit,
    // breaking the warm steady state's zero-allocation contract.
    auto it = sh.index.find(key);
    if (it == sh.index.end()) {
        it = sh.index
                 .emplace(key, static_cast<std::uint32_t>(sh.cells.size()))
                 .first;
        sh.cells.emplace_back();
        sh.keys.push_back(key);
    }
    return it->second;
}

void TraceRecorder::span_begin(VertexId v, TracePhase phase, std::int64_t level)
{
    Shard& sh = shards_[shard_index(v)];
    stack_[v].push_back(cell_for(sh, phase, level));
}

void TraceRecorder::span_end(VertexId v)
{
    DMST_ASSERT_MSG(!stack_[v].empty(), "span_end without span_begin");
    stack_[v].pop_back();
}

void TraceRecorder::instant(VertexId v, TracePhase phase, std::int64_t level)
{
    Shard& sh = shards_[shard_index(v)];
    SpanCell& cell = sh.cells[cell_for(sh, phase, level)];
    ++cell.instants;
    cell.touch(sh.now_round, sh.now_tick, sh.now_vtime);
}

std::shared_ptr<const TraceTable> TraceRecorder::finalize(
    const RunStats& stats) const
{
    // Fold the per-shard cells by key. Every fold is commutative
    // (sum/min/max), so the result is independent of shard count and
    // schedule — the basis of the tri-engine parity invariant.
    std::map<std::uint64_t, SpanCell> merged;
    TagHistogram tags;
    for (const Shard& sh : shards_) {
        for (std::size_t i = 0; i < sh.cells.size(); ++i) {
            if (!sh.cells[i].touched())
                continue;
            merged[sh.keys[i]].merge(sh.cells[i]);
        }
        tags.merge(sh.tags);
    }

    auto table = std::make_shared<TraceTable>();
    table->spans.reserve(merged.size());
    for (const auto& [key, cell] : merged) {
        TraceSpan s;
        s.phase = static_cast<TracePhase>(key >> 48);
        s.level = static_cast<std::int64_t>(key & ((std::uint64_t{1} << 48) - 1));
        s.messages = cell.messages;
        s.words = cell.words;
        s.instants = cell.instants;
        s.retransmissions = cell.retransmissions;
        s.drops = cell.drops;
        s.first_round = cell.first_round == SpanCell::kUnset ? 0 : cell.first_round;
        s.last_round = cell.last_round;
        s.first_tick = cell.first_tick == SpanCell::kUnset ? 0 : cell.first_tick;
        s.last_tick = cell.last_tick;
        s.first_vtime = cell.first_vtime == SpanCell::kUnset ? 0 : cell.first_vtime;
        s.last_vtime = cell.last_vtime;
        table->spans.push_back(s);
    }
    for (std::uint32_t t = 0; t < tags.size(); ++t) {
        if (tags.messages(t) == 0)
            continue;
        table->tags.push_back(TagCount{t, tags.messages(t), tags.words(t)});
    }
    table->total_messages = stats.messages;
    table->total_words = stats.words;
    table->total_rounds = stats.rounds;
    table->sync_messages = stats.sync_messages;
    table->sync_words = stats.sync_words;
    table->total_retransmissions = stats.retransmissions;
    table->total_drops = stats.drops;

    // Every traced run self-checks: attribution that does not conserve is
    // a bug in the instrumentation, not a report-time curiosity.
    table->validate();
    return table;
}

void TraceRecorder::validate(const RunStats& stats) const
{
    finalize(stats);  // finalize() validates and throws on violation
}

}  // namespace dmst
