#ifndef DMST_OBS_TRACE_H
#define DMST_OBS_TRACE_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dmst/congest/network_base.h"
#include "dmst/obs/counters.h"
#include "dmst/obs/phase.h"

namespace dmst {

// Span-based trace recorder for the CONGEST engines (ROADMAP: per-phase
// observability). The model:
//
//   - Drivers open/close *spans* around their protocol stages via the
//     Context trace hooks (usually through the TraceScope RAII helper).
//     Spans are keyed by (TracePhase, level) — e.g. (Ghs, i) for
//     Controlled-GHS phase i, (Boruvka, j) for Boruvka phase j — and
//     nest per vertex: every send is attributed to the sender's innermost
//     open span (or the Init span when none is open), so span sums equal
//     the RunStats totals by construction. TraceSink::validate() checks
//     that conservation invariant, and finalize() enforces it on every
//     traced run.
//
//   - Per span the recorder keeps messages, words, instants, and the
//     first/last *logical round* of activity — the engine-invariant clock
//     all three engines agree on — plus first/last substrate tick and
//     async virtual time as engine-specific extras. The logical-round
//     projection (parity_fingerprint) is bit-identical across serial,
//     parallel, and async engines for the same seed: a stronger form of
//     the tri-engine exactness contract, enforced by tests/test_trace.cpp
//     and the nightly trace self-check.
//
//   - A per-message-tag histogram (messages/words by codec tag) rides
//     along; it must conserve too.
//
// Cost model: with tracing disabled (the default) the engines hold a null
// recorder pointer and the send datapath pays one pointer test — no
// allocation, no virtual call (the counting-allocator test and the exact
// bench gates pin that down). Enabled, cells live in per-shard grow-only
// arenas: the steady state allocates nothing once every live (span, tag)
// cell exists.

// One aggregated span row of a finalized trace.
struct TraceSpan {
    TracePhase phase = TracePhase::Init;
    std::int64_t level = 0;
    std::uint64_t messages = 0;
    std::uint64_t words = 0;
    std::uint64_t instants = 0;
    // Fault-shim traffic of sends attributed here (0 without faults).
    std::uint64_t retransmissions = 0;
    std::uint64_t drops = 0;
    // Logical rounds of first/last activity: the parity-bearing fields.
    std::uint64_t first_round = 0;
    std::uint64_t last_round = 0;
    // Substrate ticks (= rounds x conditioner stride on the lock-step
    // engines, pulse levels on the async engine); excluded from parity.
    std::uint64_t first_tick = 0;
    std::uint64_t last_tick = 0;
    // Async virtual time of first/last activity; 0 on lock-step engines.
    std::uint64_t first_vtime = 0;
    std::uint64_t last_vtime = 0;
};

// One per-message-tag histogram row.
struct TagCount {
    std::uint32_t tag = 0;
    std::uint64_t messages = 0;
    std::uint64_t words = 0;
};

// A finalized, immutable trace: spans sorted by (phase, level), tags
// sorted by tag, totals snapshotted from the run's RunStats.
struct TraceTable {
    std::vector<TraceSpan> spans;
    std::vector<TagCount> tags;
    std::uint64_t total_messages = 0;
    std::uint64_t total_words = 0;
    std::uint64_t total_rounds = 0;  // RunStats::rounds (ticks)
    std::uint64_t sync_messages = 0;  // α-synchronizer control traffic
    std::uint64_t sync_words = 0;
    std::uint64_t total_retransmissions = 0;  // fault shim (congest/faults.h)
    std::uint64_t total_drops = 0;

    const TraceSpan* find(TracePhase phase, std::int64_t level) const;
    // Sum of span messages over every level of `phase`.
    std::uint64_t phase_messages(TracePhase phase) const;

    // Conservation self-check: span sums and tag sums must both equal the
    // totals. Throws InvariantViolation with a per-phase breakdown on
    // violation.
    void validate() const;

    // Engine-invariant projection: one line per span with the
    // (phase, level, first_round, last_round, messages, words, instants)
    // fields. Same seed => identical string on all three engines, per
    // network run. Multi-epoch drivers (sync Borůvka) accumulate
    // engine-specific round offsets across epoch boundaries (the async
    // engine's endgame skew, see sim/async_network.h), so only their
    // per-span messages/words/instants stay engine-invariant.
    std::string parity_fingerprint() const;
};

// Abstract sink for trace events. The engines drive the concrete
// TraceRecorder below; the interface exists so tests and tools can
// substitute their own collector.
class TraceSink {
public:
    virtual ~TraceSink() = default;

    virtual void span_begin(VertexId v, TracePhase phase,
                            std::int64_t level) = 0;
    virtual void span_end(VertexId v) = 0;
    virtual void instant(VertexId v, TracePhase phase, std::int64_t level) = 0;
    virtual void on_send(VertexId from, std::uint32_t tag,
                         std::uint64_t words) = 0;

    // Fault-shim traffic of one send (retransmissions and lost
    // transmissions), reported right after its on_send so it lands in the
    // same span. Default no-op: sinks predating the fault layer ignore it.
    virtual void on_fault(VertexId from, std::uint64_t retransmissions,
                          std::uint64_t drops)
    {
        (void)from;
        (void)retransmissions;
        (void)drops;
    }

    // Self-verification: the recorded attribution must conserve against
    // the run's totals. Throws InvariantViolation on violation.
    virtual void validate(const RunStats& stats) const = 0;
};

// Arena-backed recorder. Thread-safety contract mirrors the parallel
// engine's sharding: per-vertex state (span stacks) is only touched by
// the shard that owns the vertex, and every cell/tag table is per shard;
// folding happens on the coordinator at finalize() only. The serial and
// async engines run everything on shard 0.
class TraceRecorder final : public TraceSink {
public:
    explicit TraceRecorder(std::size_t vertex_count);

    // Parallel engine only: route each vertex's events to its owning
    // shard's tables. Must be called before any event is recorded.
    void set_sharding(int shards, const std::vector<int>& shard_of);

    // Engine clock, read by every subsequent event: the logical round,
    // the substrate tick, and the async virtual time of the current
    // activation. The clock is kept per shard so shards running at
    // different logical rounds (the sharded async engine) stay exact and
    // race-free. set_now writes every shard — coordinator-only, between
    // phases (the lock-step engines' single global clock); set_now_for
    // writes only the shard owning `v` — worker-safe, before each pulse
    // (the async engine's per-vertex clock).
    void set_now(std::uint64_t logical_round, std::uint64_t tick,
                 std::uint64_t vtime)
    {
        for (Shard& sh : shards_) {
            sh.now_round = logical_round;
            sh.now_tick = tick;
            sh.now_vtime = vtime;
        }
    }

    void set_now_for(VertexId v, std::uint64_t logical_round,
                     std::uint64_t tick, std::uint64_t vtime)
    {
        Shard& sh = shards_[shard_index(v)];
        sh.now_round = logical_round;
        sh.now_tick = tick;
        sh.now_vtime = vtime;
    }

    void span_begin(VertexId v, TracePhase phase, std::int64_t level) override;
    void span_end(VertexId v) override;
    void instant(VertexId v, TracePhase phase, std::int64_t level) override;

    void on_send(VertexId from, std::uint32_t tag, std::uint64_t words) override
    {
        Shard& sh = shards_[shard_index(from)];
        const std::vector<std::uint32_t>& stack = stack_[from];
        SpanCell& cell = sh.cells[stack.empty() ? kInitCell : stack.back()];
        ++cell.messages;
        cell.words += words;
        cell.touch(sh.now_round, sh.now_tick, sh.now_vtime);
        sh.tags.add(tag, words);
    }

    void on_fault(VertexId from, std::uint64_t retransmissions,
                  std::uint64_t drops) override
    {
        Shard& sh = shards_[shard_index(from)];
        const std::vector<std::uint32_t>& stack = stack_[from];
        SpanCell& cell = sh.cells[stack.empty() ? kInitCell : stack.back()];
        cell.retransmissions += retransmissions;
        cell.drops += drops;
        // No touch(): the accompanying on_send already stamped the clock.
    }

    // Folds every shard's cells into a sorted immutable table, snapshots
    // the totals from `stats`, and validates conservation. Repeatable: a
    // multi-epoch driver (sync_boruvka) finalizes after every run() and
    // keeps accumulating in between.
    std::shared_ptr<const TraceTable> finalize(const RunStats& stats) const;

    void validate(const RunStats& stats) const override;

private:
    struct Shard {
        std::vector<SpanCell> cells;      // cell arena; index 0 = Init
        std::vector<std::uint64_t> keys;  // parallel to cells
        std::unordered_map<std::uint64_t, std::uint32_t> index;
        TagHistogram tags;
        // Shard-local engine clock (see set_now / set_now_for).
        std::uint64_t now_round = 0;
        std::uint64_t now_tick = 0;
        std::uint64_t now_vtime = 0;
    };

    static constexpr std::uint32_t kInitCell = 0;

    static std::uint64_t span_key(TracePhase phase, std::int64_t level);

    std::size_t shard_index(VertexId v) const
    {
        return shard_of_.empty() ? 0
                                 : static_cast<std::size_t>(shard_of_[v]);
    }

    std::uint32_t cell_for(Shard& sh, TracePhase phase, std::int64_t level);

    std::vector<Shard> shards_;
    std::vector<int> shard_of_;  // empty = everything on shard 0
    std::vector<std::vector<std::uint32_t>> stack_;  // per-vertex open spans
};

// RAII span for driver code: opens (phase, level) on the context's vertex
// for the enclosing scope. A no-op (one pointer test) when tracing is
// disabled.
class TraceScope {
public:
    TraceScope(Context& ctx, TracePhase phase, std::int64_t level = 0)
        : ctx_(&ctx)
    {
        ctx_->trace_begin(phase, level);
    }

    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;

    ~TraceScope() { ctx_->trace_end(); }

private:
    Context* ctx_;
};

}  // namespace dmst

#endif  // DMST_OBS_TRACE_H
