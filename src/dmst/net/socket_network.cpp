#include "dmst/net/socket_network.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "dmst/obs/trace.h"
#include "dmst/util/assert.h"

namespace dmst {

namespace {

std::int64_t now_ms()
{
    using namespace std::chrono;
    return duration_cast<milliseconds>(steady_clock::now().time_since_epoch())
        .count();
}

// How far ahead of the last consumed epoch an incoming probe/reduce frame
// may claim to be. Honest peers are at most one exchange ahead; anything
// further is forged or corrupt and must not grow the stash unboundedly.
constexpr std::uint64_t kEpochWindow = 64;

}  // namespace

std::uint64_t SocketNetwork::session_counter_ = 0;

SocketNetwork::SocketNetwork(const WeightedGraph& g, NetConfig config)
    : NetworkBase(g, config), procs_(config.socket.procs),
      rank_(config.socket.rank),
      table_(g.vertex_count(), config.socket.procs)
{
    if (procs_ < 1)
        throw std::invalid_argument("socket engine: procs must be >= 1");
    if (rank_ < 0 || rank_ >= procs_)
        throw std::invalid_argument("socket engine: rank out of [0, procs)");
    if (static_cast<std::size_t>(procs_) > g.vertex_count())
        throw std::invalid_argument(
            "socket engine: procs must not exceed the vertex count (every "
            "rank needs a non-empty block; drivers read local state)");
    if (config_.conditioner.enabled())
        throw std::invalid_argument(
            "socket engine: the link conditioner does not compose with a "
            "real transport");
    if (config_.faults.enabled())
        throw std::invalid_argument(
            "socket engine: fault injection does not compose with a real "
            "transport (its loss is real loss)");
    lo_ = table_.block_begin(rank_);
    hi_ = table_.block_end(rank_);
    peer_cur_.assign(static_cast<std::size_t>(procs_), PeerRound{});
    peer_next_.assign(static_cast<std::size_t>(procs_), PeerRound{});
    out_frames_.resize(static_cast<std::size_t>(procs_));
    out_count_.assign(static_cast<std::size_t>(procs_), 0);
    data_sent_.assign(static_cast<std::size_t>(procs_), 0);
    session_ = ++session_counter_;
    if (procs_ > 1) {
        transport_ = make_transport(config_.socket, session_);
        sink_ = [this](const PacketHeader& h, const std::uint8_t* frames,
                       std::size_t len) { on_packet(h, frames, len); };
    }
}

SocketNetwork::~SocketNetwork()
{
    if (!transport_)
        return;
    try {
        // Discard frames that race the teardown; the run is over.
        transport_->shutdown(
            250, [](const PacketHeader&, const std::uint8_t*, std::size_t) {});
    } catch (...) {
        // A destructor must not throw; a failed goodbye only costs peers
        // their retransmission tail.
    }
}

bool SocketNetwork::quiescent() const
{
    if (!transport_)
        return NetworkBase::quiescent();
    return global_state_valid_ && global_quiescent_;
}

template <typename Pred>
void SocketNetwork::poll_until(const Pred& pred, const char* what)
{
    if (pred())
        return;
    const std::int64_t deadline =
        now_ms() + config_.socket.round_timeout_ms;
    for (;;) {
        transport_->poll(20, sink_);
        if (pred())
            return;
        if (now_ms() >= deadline) {
            std::ostringstream oss;
            oss << "socket engine: rank " << rank_ << " timed out after "
                << config_.socket.round_timeout_ms << " ms waiting for "
                << what << " at round " << round_ << " (peer process dead?)";
            throw std::runtime_error(oss.str());
        }
    }
}

void SocketNetwork::flush_peer(int peer)
{
    auto& buf = out_frames_[static_cast<std::size_t>(peer)];
    if (buf.empty())
        return;
    transport_->send_frames(peer, buf.data(), buf.size(),
                            out_count_[static_cast<std::size_t>(peer)]);
    buf.clear();
    out_count_[static_cast<std::size_t>(peer)] = 0;
}

void SocketNetwork::send_single_frame(int peer, FrameKind kind,
                                      std::uint64_t epoch,
                                      const std::uint64_t* words,
                                      std::size_t nwords)
{
    std::vector<std::uint8_t> buf;
    append_frame(buf, kind, 0, epoch, 0, 0, words, nwords);
    transport_->send_frames(peer, buf.data(), buf.size(), 1);
}

void SocketNetwork::send_from(VertexId from, std::size_t port, Message&& msg)
{
    const std::size_t size = msg.size_words();
    charge_bandwidth(from, port, size);

    const VertexId target = graph_.neighbor(from, port);
    const std::size_t arrival_port = reverse_port(from, port);
    if (trace_)
        trace_->on_send(from, msg.tag, size);
    if (config_.record_per_edge)
        ++stats_.messages_per_edge[graph_.edge_id(from, port)];
    ++round_messages_;
    stats_.messages += 1;
    stats_.words += size;

    if (owns(target)) {
        // The serial engine's staging path, verbatim.
        ++inbox_count_[target];
        staged_.emplace(target, static_cast<std::uint32_t>(arrival_port),
                        std::move(msg));
        ++in_flight_;
        return;
    }
    // Cross-rank: one Data frame in the owner's coalescing buffer, tagged
    // with the current round so the receiver can place it exactly.
    const int peer = table_.owner(target);
    auto& buf = out_frames_[static_cast<std::size_t>(peer)];
    append_frame(buf, FrameKind::Data, msg.tag, round_, target,
                 static_cast<std::uint32_t>(arrival_port), msg.words.data(),
                 msg.words.size());
    ++out_count_[static_cast<std::size_t>(peer)];
    ++data_sent_[static_cast<std::size_t>(peer)];
    ++remote_staged_round_;
    if (buf.size() >= kPacketPayloadBudget)
        flush_peer(peer);
}

bool SocketNetwork::step()
{
    DMST_ASSERT_MSG(!processes_.empty(), "init() must be called before stepping");
    // Entering with the global state unknown (fresh network) or last known
    // quiescent (the driver may have kicked vertices since): probe.
    if (!global_state_valid_ || global_quiescent_) {
        if (probe_quiescent())
            return false;
    }

    ++round_;
    ++logical_round_;
    in_round_ = true;
    round_messages_ = 0;
    remote_staged_round_ = 0;
    std::fill(data_sent_.begin(), data_sent_.end(), 0);
    // Rotate the ledgers: what accumulated as "next" while we finished the
    // previous round is this round's state.
    peer_cur_.swap(peer_next_);
    std::fill(peer_next_.begin(), peer_next_.end(), PeerRound{});
    DMST_ASSERT(remote_cur_.empty());
    remote_cur_.swap(remote_next_);

    if (trace_)
        trace_->set_now(logical_round_, round_, 0);
    for (VertexId v = lo_; v < hi_; ++v)
        reset_round_words(v);
    for (VertexId v = lo_; v < hi_; ++v) {
        Context ctx = context_for(v);
        processes_[v]->on_round(ctx);
    }
    DMST_ASSERT(live_ <= in_flight_);
    in_flight_ -= live_;
    live_ = 0;

    local_done_ = true;
    for (VertexId v = lo_; v < hi_; ++v) {
        if (!processes_[v]->done()) {
            local_done_ = false;
            break;
        }
    }
    const std::uint64_t staged_out = staged_.size() + remote_staged_round_;

    if (transport_) {
        // The barrier rides the same in-order channel as the data, after
        // all of it — its receipt implies the round's data is complete.
        for (int p = 0; p < procs_; ++p) {
            if (p == rank_)
                continue;
            const std::uint64_t words[kBarrierWords] = {
                data_sent_[static_cast<std::size_t>(p)],
                local_done_ ? kBarrierFlagDone : 0, staged_out};
            append_frame(out_frames_[static_cast<std::size_t>(p)],
                         FrameKind::Barrier, 0, round_, 0, 0, words,
                         kBarrierWords);
            ++out_count_[static_cast<std::size_t>(p)];
            flush_peer(p);
        }
        wait_for_round_barrier();
    }

    // Global quiescence falls out of the barrier ledger: everyone done and
    // nothing staged anywhere (each rank counts its own sends, so the sum
    // counts every staged message exactly once).
    bool all_done = local_done_;
    std::uint64_t global_staged = staged_out;
    for (int p = 0; p < procs_; ++p) {
        if (p == rank_)
            continue;
        const PeerRound& pr = peer_cur_[static_cast<std::size_t>(p)];
        all_done = all_done && pr.peer_done;
        global_staged += pr.peer_staged;
    }
    global_quiescent_ = all_done && global_staged == 0;
    global_state_valid_ = true;
    in_round_ = false;

    deliver_round();

    stats_.rounds = round_;
    if (config_.record_per_round)
        stats_.messages_per_round.push_back(round_messages_);
    fold_transport_stats();
    return true;
}

void SocketNetwork::wait_for_round_barrier()
{
    poll_until(
        [this] {
            for (int p = 0; p < procs_; ++p) {
                if (p == rank_)
                    continue;
                const PeerRound& pr = peer_cur_[static_cast<std::size_t>(p)];
                if (!pr.barrier_seen ||
                    pr.frames_received < pr.frames_expected)
                    return false;
            }
            return true;
        },
        "round barrier");
    for (int p = 0; p < procs_; ++p) {
        if (p == rank_)
            continue;
        const PeerRound& pr = peer_cur_[static_cast<std::size_t>(p)];
        if (pr.frames_received != pr.frames_expected) {
            std::ostringstream oss;
            oss << "socket engine: rank " << rank_ << " accepted "
                << pr.frames_received << " data frames from rank " << p
                << " at round " << round_ << " but its barrier counted "
                << pr.frames_expected
                << " (frames were dropped as malformed, or forged)";
            throw std::runtime_error(oss.str());
        }
    }
}

bool SocketNetwork::probe_quiescent()
{
    local_done_ = true;
    for (VertexId v = lo_; v < hi_; ++v) {
        if (!processes_[v]->done()) {
            local_done_ = false;
            break;
        }
    }
    if (!transport_) {
        // Nothing can be in flight between run() epochs; done is all there
        // is to know.
        global_quiescent_ = local_done_;
        global_state_valid_ = true;
        return global_quiescent_;
    }
    const std::uint64_t epoch = ++probe_epoch_;
    const std::uint64_t words[1] = {local_done_ ? 1u : 0u};
    for (int p = 0; p < procs_; ++p) {
        if (p != rank_)
            send_single_frame(p, FrameKind::Probe, epoch, words, 1);
    }
    poll_until(
        [this, epoch] {
            const auto it = probe_stash_.find(epoch);
            if (it == probe_stash_.end())
                return false;
            for (int p = 0; p < procs_; ++p) {
                if (p != rank_ && it->second[static_cast<std::size_t>(p)] < 0)
                    return false;
            }
            return true;
        },
        "quiescence probe");
    bool all_done = local_done_;
    const auto& slots = probe_stash_[epoch];
    for (int p = 0; p < procs_; ++p) {
        if (p != rank_)
            all_done = all_done && slots[static_cast<std::size_t>(p)] == 1;
    }
    probe_consumed_ = epoch;
    probe_stash_.erase(probe_stash_.begin(),
                       probe_stash_.upper_bound(epoch));
    global_quiescent_ = all_done;
    global_state_valid_ = true;
    fold_transport_stats();
    return global_quiescent_;
}

void SocketNetwork::allreduce_or(std::uint64_t* words, std::size_t count)
{
    if (!transport_)
        return;
    DMST_ASSERT_MSG(count >= 1 && count <= kMaxFrameWords,
                    "allreduce_or: word count out of range");
    const std::uint64_t epoch = ++reduce_epoch_;
    for (int p = 0; p < procs_; ++p) {
        if (p != rank_)
            send_single_frame(p, FrameKind::Reduce, epoch, words, count);
    }
    poll_until(
        [this, epoch] {
            const auto it = reduce_stash_.find(epoch);
            if (it == reduce_stash_.end())
                return false;
            for (int p = 0; p < procs_; ++p) {
                if (p != rank_ &&
                    !it->second[static_cast<std::size_t>(p)].seen)
                    return false;
            }
            return true;
        },
        "allreduce exchange");
    const auto& slots = reduce_stash_[epoch];
    for (int p = 0; p < procs_; ++p) {
        if (p == rank_)
            continue;
        const ReduceSlot& slot = slots[static_cast<std::size_t>(p)];
        if (slot.words.size() != count) {
            std::ostringstream oss;
            oss << "socket engine: allreduce width mismatch with rank " << p
                << " (" << slot.words.size() << " vs " << count
                << " words) — drivers must issue collectives symmetrically";
            throw std::runtime_error(oss.str());
        }
        for (std::size_t i = 0; i < count; ++i)
            words[i] |= slot.words[i];
    }
    reduce_consumed_ = epoch;
    reduce_stash_.erase(reduce_stash_.begin(),
                        reduce_stash_.upper_bound(epoch));
    fold_transport_stats();
}

void SocketNetwork::deliver_round()
{
    // Remote arrivals enter local flight here (local sends entered at
    // send_from); both leave when the next activation consumes the arena.
    in_flight_ += remote_cur_.size();
    for (const RemoteMsg& rm : remote_cur_)
        ++inbox_count_[rm.dst];

    const std::size_t total = staged_.size() + remote_cur_.size();
    if (slab_.size() < total)
        slab_.resize(std::max(total, 2 * slab_.size()));
    live_ = total;

    // Stable counting scatter, exactly the serial engine's: local staged
    // messages first (already in (sender id, send order)), then remote
    // frames in arrival order. Messages tie on arrival port only if they
    // crossed the same edge direction — one sender, one in-order channel —
    // so the stable per-span port sort reproduces the serial inbox.
    Incoming* base = slab_.data();
    std::size_t cursor = 0;
    for (VertexId v = lo_; v < hi_; ++v) {
        inbox_span_[v] = InboxSpan{base + cursor, inbox_count_[v]};
        scatter_off_[v] = cursor;
        cursor += inbox_count_[v];
        inbox_count_[v] = 0;
    }
    staged_.for_each([&](Staged& s) {
        Incoming& slot = base[scatter_off_[s.target]++];
        slot.port = s.port;
        slot.msg = std::move(s.msg);
    });
    staged_.clear();
    for (RemoteMsg& rm : remote_cur_) {
        Incoming& slot = base[scatter_off_[rm.dst]++];
        slot.port = rm.port;
        slot.msg = std::move(rm.msg);
    }
    remote_cur_.clear();

    for (VertexId v = lo_; v < hi_; ++v) {
        const InboxSpan& span = inbox_span_[v];
        sort_span_by_port(span.data, span.len, sort_scratch_);
    }
}

// --------------------------------------------------- hardened receive path

void SocketNetwork::on_packet(const PacketHeader& h,
                              const std::uint8_t* frames, std::size_t len)
{
    const int src = h.src_rank;
    if (src < 0 || src >= procs_ || src == rank_) {
        ++frame_malformed_;
        return;
    }
    FrameCursor c = frame_cursor(frames, len, h);
    WireFrame f;
    while (!c.done()) {
        if (next_frame(c, f) != WireError::Ok) {
            // Frame boundaries can no longer be trusted; the rest of the
            // packet is discarded with it.
            ++frame_malformed_;
            return;
        }
        switch (f.kind) {
        case FrameKind::Data:
            handle_data(src, f);
            break;
        case FrameKind::Barrier:
            handle_barrier(src, f);
            break;
        case FrameKind::Probe:
            handle_probe(src, f);
            break;
        case FrameKind::Reduce:
            handle_reduce(src, f);
            break;
        }
    }
    if (finish_frames(c) != WireError::Ok)
        ++frame_malformed_;
}

void SocketNetwork::handle_data(int src, const WireFrame& f)
{
    // Structural validation before anything touches engine state: the
    // vertex must be ours, the port must exist, the claimed sender must
    // actually sit behind that port on the claiming rank, and the payload
    // must fit the CONGEST per-message budget.
    const VertexId dst = f.dst_vertex;
    if (!owns(dst) || f.port >= graph_.degree(dst)) {
        ++frame_malformed_;
        return;
    }
    const VertexId sender = graph_.neighbor(dst, f.port);
    if (table_.owner(sender) != src) {
        ++frame_malformed_;
        return;
    }
    if (1 + static_cast<std::size_t>(f.nwords) >
        kWordsPerUnit * static_cast<std::size_t>(config_.bandwidth)) {
        ++frame_malformed_;
        return;
    }
    std::vector<RemoteMsg>* bucket = nullptr;
    PeerRound* slot = nullptr;
    if (in_round_ && f.round == round_) {
        bucket = &remote_cur_;
        slot = &peer_cur_[static_cast<std::size_t>(src)];
    } else if (f.round == round_ + 1) {
        bucket = &remote_next_;
        slot = &peer_next_[static_cast<std::size_t>(src)];
    } else {
        ++frame_malformed_;  // stale or far-future round
        return;
    }
    RemoteMsg rm;
    rm.dst = dst;
    rm.port = f.port;
    rm.msg.tag = f.tag;
    for (std::size_t i = 0; i < f.nwords; ++i)
        rm.msg.words.push_back(f.word(i));
    bucket->push_back(std::move(rm));
    ++slot->frames_received;
}

void SocketNetwork::handle_barrier(int src, const WireFrame& f)
{
    if (f.nwords != kBarrierWords) {
        ++frame_malformed_;
        return;
    }
    PeerRound* slot = nullptr;
    if (in_round_ && f.round == round_)
        slot = &peer_cur_[static_cast<std::size_t>(src)];
    else if (f.round == round_ + 1)
        slot = &peer_next_[static_cast<std::size_t>(src)];
    else {
        ++frame_malformed_;
        return;
    }
    if (slot->barrier_seen) {
        ++frame_malformed_;  // the transport dedups; a second one is forged
        return;
    }
    slot->barrier_seen = true;
    slot->frames_expected = f.word(0);
    slot->peer_done = (f.word(1) & kBarrierFlagDone) != 0;
    slot->peer_staged = f.word(2);
}

void SocketNetwork::handle_probe(int src, const WireFrame& f)
{
    const std::uint64_t epoch = f.round;
    if (f.nwords != 1 || epoch <= probe_consumed_ ||
        epoch > probe_consumed_ + kEpochWindow) {
        ++frame_malformed_;
        return;
    }
    auto& slots = probe_stash_[epoch];
    if (slots.empty())
        slots.assign(static_cast<std::size_t>(procs_), -1);
    int& slot = slots[static_cast<std::size_t>(src)];
    if (slot >= 0) {
        ++frame_malformed_;
        return;
    }
    slot = static_cast<int>(f.word(0) & 1);
}

void SocketNetwork::handle_reduce(int src, const WireFrame& f)
{
    const std::uint64_t epoch = f.round;
    if (f.nwords < 1 || epoch <= reduce_consumed_ ||
        epoch > reduce_consumed_ + kEpochWindow) {
        ++frame_malformed_;
        return;
    }
    auto& slots = reduce_stash_[epoch];
    if (slots.empty())
        slots.assign(static_cast<std::size_t>(procs_), ReduceSlot{});
    ReduceSlot& slot = slots[static_cast<std::size_t>(src)];
    if (slot.seen) {
        ++frame_malformed_;
        return;
    }
    slot.seen = true;
    slot.words.resize(f.nwords);
    for (std::size_t i = 0; i < f.nwords; ++i)
        slot.words[i] = f.word(i);
}

void SocketNetwork::fold_transport_stats()
{
    stats_.malformed_frames = frame_malformed_;
    if (!transport_)
        return;
    const TransportStats& t = transport_->stats();
    stats_.malformed_frames += t.malformed;
    stats_.net_packets_out = t.packets_out;
    stats_.net_packets_in = t.packets_in;
    stats_.net_bytes_out = t.bytes_out;
    stats_.net_bytes_in = t.bytes_in;
    // Kept out of the shim's retransmissions/timeouts/acks columns: those
    // are deterministic model counters under trace fault-conservation;
    // real datagram retransmits are environment noise (see RunStats).
    stats_.net_retransmissions = t.retransmissions;
    stats_.net_timeouts = t.timeouts;
    stats_.net_acks = t.acks;
}

}  // namespace dmst
