#ifndef DMST_NET_TRANSPORT_H
#define DMST_NET_TRANSPORT_H

#include <cstdint>
#include <functional>
#include <memory>

#include "dmst/congest/network_base.h"
#include "dmst/net/wire.h"

namespace dmst {

// Packet-level counters of one transport instance; folded into RunStats'
// net_* columns by the socket engine. UDP reliability reuses the fault
// shim's capped-exponential-backoff schedule (FaultConfig::rto), but its
// counters stay separate from the shim's `retransmissions`/`timeouts`/
// `acks`: those are deterministic model facts under trace conservation,
// while a real datagram retransmit depends on kernel timing.
struct TransportStats {
    std::uint64_t packets_out = 0;
    std::uint64_t packets_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t retransmissions = 0;  // UDP data packets resent
    std::uint64_t timeouts = 0;         // UDP retransmission timer expiries
    std::uint64_t acks = 0;             // UDP ack-only packets sent
    std::uint64_t duplicates = 0;       // UDP packets below the cumulative ack
    std::uint64_t malformed = 0;        // packets failing header validation
};

// Reliable, in-order, per-peer packet channel over a real socket — the
// only layer that touches file descriptors. Single-threaded: everything
// happens inside the caller's poll() calls.
//
// Delivery contract (both transports): for each peer, Frames packets are
// handed to the sink exactly once, in send order. UDP gets there with a
// per-peer sequence number, a cumulative ack, an out-of-order reorder
// buffer and retransmission on FaultConfig::rto backoff; TCP gets it from
// the stream, with packets delimited by a u32 length prefix.
class Transport {
public:
    // Called for each delivered Frames packet: validated header + the
    // frame bytes (valid only during the call).
    using PacketSink = std::function<void(const PacketHeader&,
                                          const std::uint8_t*, std::size_t)>;

    virtual ~Transport() = default;

    // Queues one Frames packet (`frame_count` frames in `len` bytes) to
    // `peer`, reliably and in order.
    virtual void send_frames(int peer, const std::uint8_t* frames,
                             std::size_t len, std::uint16_t frame_count) = 0;

    // Services the socket for up to `timeout_ms`: receives, delivers
    // in-order packets to `sink`, sends pending acks, runs retransmission
    // timers. Returns true if at least one Frames packet was delivered.
    virtual bool poll(int timeout_ms, const PacketSink& sink) = 0;

    // Best-effort teardown: announces Bye, then keeps servicing acks and
    // retransmissions for up to `linger_ms` so peers still waiting on our
    // acks are not forced into timeout tails. Idempotent.
    virtual void shutdown(int linger_ms, const PacketSink& sink) = 0;

    const TransportStats& stats() const { return stats_; }

protected:
    TransportStats stats_;
};

// Builds the transport selected by cfg.transport, binds/connects it (TCP
// performs the full mesh handshake here, within cfg.handshake_timeout_ms),
// and stamps `session` into every outgoing packet header. Requires
// cfg.procs >= 2; cfg.host must be an IPv4 literal. Throws
// std::runtime_error on socket failures.
std::unique_ptr<Transport> make_transport(const SocketConfig& cfg,
                                          std::uint64_t session);

}  // namespace dmst

#endif  // DMST_NET_TRANSPORT_H
