#ifndef DMST_NET_SOCKET_NETWORK_H
#define DMST_NET_SOCKET_NETWORK_H

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "dmst/congest/network_base.h"
#include "dmst/net/peer_table.h"
#include "dmst/net/transport.h"

namespace dmst {

// Real-network engine (Engine::Socket): the run is `procs` cooperating
// processes, each owning one contiguous vertex block (net/peer_table.h)
// and stepping it with exactly the serial engine's semantics; messages
// between blocks travel as wire frames (net/wire.h) over a UDP or TCP
// transport (net/transport.cpp). Lock-step is kept by a per-round barrier
// frame: each rank ends its round by telling every peer how many data
// frames it sent them, whether its block is done, and how many messages it
// staged for the next round; a rank only delivers and advances once every
// peer's barrier has arrived and the counted data frames with it. Because
// the barrier travels after the data on the same in-order channel, its
// receipt implies the round's data is complete — the count is an integrity
// check, not the ordering mechanism.
//
// Determinism. A vertex's inbox is scattered exactly like the serial
// engine's — local sends in (sender id, send order), then remote frames in
// arrival order — and stable-sorted by arrival port. Two messages tie on
// port only if they crossed the same edge direction, i.e. came from one
// sender over one in-order channel, so the serial tie-break is reproduced
// bit-for-bit and the union of the ranks' outputs equals a serial run.
//
// Quiescence and collectives. run() epochs are separated by driver kicks
// the network cannot see, so entering step() with the global state unknown
// (or last known quiescent) triggers a probe exchange: every rank reports
// its local done flag and the round only proceeds if someone has work.
// allreduce_or() is the matching epoch-numbered reduce exchange for
// drivers that branch on global state between runs. Both are collectives:
// deterministic symmetric drivers guarantee every rank issues them in the
// same order, which is what lets an epoch number identify an exchange.
//
// Peers can run at most one round (or collective epoch) ahead — they need
// our barrier or contribution to advance further — so frames for round
// r + 1 are stashed in "next" ledgers and anything outside {r, r + 1} (or
// outside the epoch window) is dropped and counted in
// RunStats::malformed_frames, the same counter the hardened receive path
// uses for structurally invalid frames.
//
// Composition: rejects the conditioner, the loss shim and crash-stop —
// this backend's loss is real loss, handled by real retransmission
// (UDP reuses the fault shim's backoff schedule; see net/transport.h).
class SocketNetwork : public NetworkBase {
public:
    SocketNetwork(const WeightedGraph& g, NetConfig config);
    ~SocketNetwork() override;

    bool step() override;
    bool quiescent() const override;

    VertexId local_begin() const override { return lo_; }
    VertexId local_end() const override { return hi_; }
    void allreduce_or(std::uint64_t* words, std::size_t count) override;

    int rank() const { return rank_; }
    int procs() const { return procs_; }
    const PeerTable& peer_table() const { return table_; }

protected:
    void send_from(VertexId from, std::size_t port, Message&& msg) override;

private:
    // One cross-rank message parked until its round's deliver phase.
    struct RemoteMsg {
        VertexId dst = 0;
        std::uint32_t port = 0;
        Message msg;
    };

    // Per-peer barrier ledger of one round (cur) or the next (next).
    struct PeerRound {
        bool barrier_seen = false;
        bool peer_done = false;
        std::uint64_t frames_expected = 0;  // data frames the barrier counted
        std::uint64_t frames_received = 0;  // data frames actually accepted
        std::uint64_t peer_staged = 0;      // peer's sends staged for next round
    };

    struct ReduceSlot {
        bool seen = false;
        std::vector<std::uint64_t> words;
    };

    bool probe_quiescent();
    void flush_peer(int peer);
    void send_single_frame(int peer, FrameKind kind, std::uint64_t epoch,
                           const std::uint64_t* words, std::size_t nwords);
    void wait_for_round_barrier();
    void deliver_round();
    void fold_transport_stats();

    // Hardened receive path: every field of every frame is validated
    // before it can touch engine state; failures drop-and-count.
    void on_packet(const PacketHeader& h, const std::uint8_t* frames,
                   std::size_t len);
    void handle_data(int src, const WireFrame& f);
    void handle_barrier(int src, const WireFrame& f);
    void handle_probe(int src, const WireFrame& f);
    void handle_reduce(int src, const WireFrame& f);

    template <typename Pred>
    void poll_until(const Pred& pred, const char* what);

    int procs_;
    int rank_;
    PeerTable table_;
    VertexId lo_ = 0;
    VertexId hi_ = 0;
    std::uint64_t session_ = 0;
    std::unique_ptr<Transport> transport_;  // null when procs == 1
    Transport::PacketSink sink_;

    // Serial-identical local datapath state.
    StagedBuffer staged_;         // this round's local-target sends
    std::vector<Incoming> slab_;  // grow-only inbox arena
    std::size_t live_ = 0;
    SortScratch sort_scratch_;
    std::uint64_t round_messages_ = 0;

    // Cross-rank arrivals: cur is consumed by this round's deliver phase,
    // next stashes frames from peers already one round ahead.
    std::vector<RemoteMsg> remote_cur_;
    std::vector<RemoteMsg> remote_next_;

    // Per-peer outgoing frame coalescing buffers and this-round counters.
    std::vector<std::vector<std::uint8_t>> out_frames_;
    std::vector<std::uint16_t> out_count_;
    std::vector<std::uint64_t> data_sent_;  // data frames per peer this round
    std::uint64_t remote_staged_round_ = 0;

    std::vector<PeerRound> peer_cur_;
    std::vector<PeerRound> peer_next_;

    // Collective exchanges, keyed by epoch (see class comment).
    std::uint64_t probe_epoch_ = 0;     // last epoch issued
    std::uint64_t probe_consumed_ = 0;  // last epoch completed
    std::map<std::uint64_t, std::vector<int>> probe_stash_;
    std::uint64_t reduce_epoch_ = 0;
    std::uint64_t reduce_consumed_ = 0;
    std::map<std::uint64_t, std::vector<ReduceSlot>> reduce_stash_;

    // Global-state cache maintained at barriers and probes.
    bool in_round_ = false;
    bool local_done_ = false;
    bool global_state_valid_ = false;
    bool global_quiescent_ = false;

    // Frame-level drops (transport-level ones live in TransportStats).
    std::uint64_t frame_malformed_ = 0;

    // Session ids advance per constructed SocketNetwork; ranks construct
    // networks in the same deterministic driver order, so the ids agree
    // across the run and packets from a previous network on the same ports
    // are recognized as stale.
    static std::uint64_t session_counter_;
};

}  // namespace dmst

#endif  // DMST_NET_SOCKET_NETWORK_H
