#ifndef DMST_NET_WIRE_H
#define DMST_NET_WIRE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dmst {

// On-wire framing of the socket backend (see docs/TRANSPORT.md for the
// byte-level tables). A packet is one transport unit — a UDP datagram, or
// a u32-length-prefixed record on a TCP stream — carrying a fixed header
// followed by zero or more frames. A frame wraps one typed-codec message
// (congest/codec.h payload words travel verbatim) plus the routing fields
// the receiver needs: destination vertex, arrival port, and the logical
// round the send belongs to.
//
// Everything in this header is pure and allocation-independent: writers
// append to a caller-owned byte vector, parsers read only inside
// [data, data + len) and report WireError instead of throwing or
// asserting. This is the hardened untrusted-input path — the fuzz suite
// (tests/test_net_wire.cpp) feeds it truncated, extended, bit-flipped and
// random byte strings and requires clean rejection with zero UB.
//
// All integers are little-endian on the wire, packed and unpacked with
// explicit byte arithmetic (no struct punning, no alignment assumptions).

// ------------------------------------------------------------- constants

constexpr std::uint32_t kWireMagic = 0x54534D44u;  // "DMST" little-endian
constexpr std::uint8_t kWireVersion = 1;
constexpr std::size_t kPacketHeaderBytes = 40;
constexpr std::size_t kFrameHeaderBytes = 24;
// Structural sanity cap on one frame's payload words; the receive path
// additionally enforces the CONGEST bandwidth budget of the addressed
// link, which is far smaller.
constexpr std::uint16_t kMaxFrameWords = 4096;
// Coalescing threshold: a rank flushes its per-peer frame buffer into a
// packet once it crosses this many bytes (well under the 64 KiB UDP
// payload ceiling, large enough to amortize syscalls on loopback).
constexpr std::size_t kPacketPayloadBudget = 32 * 1024;

// What a packet is, at the transport layer.
enum class PacketKind : std::uint8_t {
    Frames = 1,   // carries frame_count frames (the normal case)
    Hello = 2,    // TCP connection identification: "I am src_rank"
    AckOnly = 3,  // UDP: header-only carrier for the cumulative ack
    Bye = 4,      // sender finished; peers may stop retransmitting to it
};

// What a frame means, at the engine layer.
enum class FrameKind : std::uint8_t {
    Data = 1,     // one protocol message for (dst_vertex, port) in `round`
    Barrier = 2,  // end-of-round marker: [frames sent to you, flags, staged]
    Probe = 3,    // quiescence probe (round = probe epoch): [done flag]
    Reduce = 4,   // allreduce contribution (round = reduce epoch): words
};

// Barrier payload layout (nwords == 3).
constexpr std::size_t kBarrierWords = 3;
constexpr std::uint64_t kBarrierFlagDone = 1;  // bit 0 of words[1]

// ---------------------------------------------------------------- header

struct PacketHeader {
    PacketKind kind = PacketKind::Frames;
    std::uint16_t src_rank = 0;
    std::uint16_t frame_count = 0;
    std::uint64_t session = 0;  // network-instance id; stale sessions drop
    std::uint64_t seq = 0;      // UDP reliability: per-peer packet sequence
    std::uint64_t ack = 0;      // UDP reliability: cumulative in-order ack
};

// ---------------------------------------------------------------- frames

// Parsed view of one frame; `payload` points into the packet buffer and is
// only valid while that buffer lives.
struct WireFrame {
    FrameKind kind = FrameKind::Data;
    std::uint16_t nwords = 0;
    std::uint32_t tag = 0;
    std::uint64_t round = 0;
    std::uint32_t dst_vertex = 0;
    std::uint32_t port = 0;
    const std::uint8_t* payload = nullptr;  // nwords little-endian u64s

    std::uint64_t word(std::size_t i) const;  // bounds-unchecked by design
};

// ---------------------------------------------------------------- errors

enum class WireError : std::uint8_t {
    Ok = 0,
    Short,          // fewer bytes than the header/frame claims
    BadMagic,
    BadVersion,
    BadPacketKind,
    BadFrameKind,
    Oversized,      // frame payload beyond kMaxFrameWords
    TrailingBytes,  // bytes left over after the declared frame count
    FrameCountMismatch,  // payload ended before frame_count frames
};

const char* wire_error_name(WireError e);

// --------------------------------------------------------------- writers

// Appends a packet header for `h` to `buf`. frame_count/seq/ack may be
// patched later in place (they live at fixed offsets from the start of the
// header) via patch_packet_header.
void append_packet_header(std::vector<std::uint8_t>& buf, const PacketHeader& h);

// Rewrites frame_count/seq/ack of the header starting at `header_off`.
void patch_packet_header(std::vector<std::uint8_t>& buf, std::size_t header_off,
                         std::uint16_t frame_count, std::uint64_t seq,
                         std::uint64_t ack);

// Appends one frame (header + payload words) to `buf`.
void append_frame(std::vector<std::uint8_t>& buf, FrameKind kind,
                  std::uint32_t tag, std::uint64_t round,
                  std::uint32_t dst_vertex, std::uint32_t port,
                  const std::uint64_t* words, std::size_t nwords);

// --------------------------------------------------------------- parsers

// Parses a packet header from [data, data + len). On Ok, `payload_off` is
// kPacketHeaderBytes (the first frame byte). Performs structural checks
// only — session/rank validation is the caller's.
WireError parse_packet_header(const std::uint8_t* data, std::size_t len,
                              PacketHeader& out);

// Frame iteration state over one packet's payload.
struct FrameCursor {
    const std::uint8_t* p = nullptr;
    const std::uint8_t* end = nullptr;
    std::uint16_t remaining = 0;  // frames left per the packet header

    bool done() const { return remaining == 0; }
};

FrameCursor frame_cursor(const std::uint8_t* payload, std::size_t len,
                         const PacketHeader& h);

// Parses the next frame. Returns Ok and advances the cursor, or an error —
// after any error the cursor is dead and the rest of the packet must be
// discarded (frame boundaries can no longer be trusted). When the last
// frame has been read (cursor.done()), call finish_frames to reject
// trailing garbage.
WireError next_frame(FrameCursor& c, WireFrame& out);
WireError finish_frames(const FrameCursor& c);

}  // namespace dmst

#endif  // DMST_NET_WIRE_H
