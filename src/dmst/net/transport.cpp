#include "dmst/net/transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <deque>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "dmst/congest/faults.h"
#include "dmst/net/peer_table.h"

namespace dmst {

namespace {

std::int64_t now_ms()
{
    using namespace std::chrono;
    return duration_cast<milliseconds>(steady_clock::now().time_since_epoch())
        .count();
}

[[noreturn]] void throw_errno(const char* what)
{
    std::ostringstream oss;
    oss << "socket transport: " << what << ": " << strerror(errno);
    throw std::runtime_error(oss.str());
}

void set_nonblocking(int fd)
{
    const int flags = fcntl(fd, F_GETFL, 0);
    if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throw_errno("fcntl(O_NONBLOCK)");
}

sockaddr_in make_addr(const std::string& host, int port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    const std::string h = host.empty() ? std::string("127.0.0.1") : host;
    if (inet_pton(AF_INET, h.c_str(), &addr.sin_addr) != 1)
        throw std::runtime_error("socket transport: host must be an IPv4 "
                                 "literal, got '" + h + "'");
    return addr;
}

// Loopback RTT assumed by the retransmission timer, in ms. Feeds the
// fault shim's backoff schedule (FaultConfig::rto) with ticks read as
// milliseconds: attempt k waits rtt + min(rto_base << (k-1), rto_cap).
constexpr std::uint64_t kAssumedRttMs = 2;

// Largest UDP payload this transport will send in one datagram.
constexpr std::size_t kMaxUdpPacket = 60'000;

// Reorder-buffer bound per peer; packets beyond it are dropped and covered
// by the sender's retransmission (a sender this far ahead is misbehaving).
constexpr std::size_t kMaxReorder = 4096;

// TCP record sanity bound: header + the largest coalesced frame run we
// ever emit, with slack. A longer length prefix means a desynced stream.
constexpr std::size_t kMaxTcpRecord = 1 << 20;

// ------------------------------------------------------------------ UDP

class UdpTransport final : public Transport {
public:
    UdpTransport(const SocketConfig& cfg, std::uint64_t session)
        : procs_(cfg.procs), rank_(cfg.rank), session_(session),
          peers_(static_cast<std::size_t>(cfg.procs))
    {
        fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
        if (fd_ < 0)
            throw_errno("socket(udp)");
        const int one = 1;
        ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        // A whole rank's round can land between two poll calls; size the
        // kernel buffers so bursts from procs-1 peers do not overflow.
        const int buf = 4 << 20;
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &buf, sizeof buf);
        ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &buf, sizeof buf);
        sockaddr_in self = make_addr(cfg.host,
                                     PeerTable::port_of(cfg.base_port, rank_));
        if (::bind(fd_, reinterpret_cast<sockaddr*>(&self), sizeof self) < 0)
            throw_errno("bind(udp)");
        set_nonblocking(fd_);
        for (int r = 0; r < procs_; ++r)
            peers_[static_cast<std::size_t>(r)].addr =
                make_addr(cfg.host, PeerTable::port_of(cfg.base_port, r));
    }

    ~UdpTransport() override
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    void send_frames(int peer, const std::uint8_t* frames, std::size_t len,
                     std::uint16_t frame_count) override
    {
        Peer& p = peers_[static_cast<std::size_t>(peer)];
        Unacked u;
        u.seq = p.next_seq_out++;
        u.frame_count = frame_count;
        u.frames.assign(frames, frames + len);
        u.attempt = 1;
        u.deadline_ms = now_ms() + rto_ms(1);
        transmit(peer, u);
        p.unacked.push_back(std::move(u));
    }

    bool poll(int timeout_ms, const PacketSink& sink) override
    {
        const std::int64_t deadline = now_ms() + timeout_ms;
        bool delivered = drain(sink);
        service();
        while (!delivered) {
            const std::int64_t now = now_ms();
            if (now >= deadline)
                break;
            pollfd pfd{fd_, POLLIN, 0};
            const int slice = static_cast<int>(
                std::min<std::int64_t>(deadline - now, next_timer_slice()));
            ::poll(&pfd, 1, slice);
            delivered = drain(sink);
            service();
        }
        return delivered;
    }

    void shutdown(int linger_ms, const PacketSink& sink) override
    {
        if (shut_)
            return;
        shut_ = true;
        for (int r = 0; r < procs_; ++r) {
            if (r != rank_)
                send_control(r, PacketKind::Bye);
        }
        // Keep acking and retransmitting briefly: a peer still waiting on
        // our last ack would otherwise sit out its full timeout tail.
        const std::int64_t deadline = now_ms() + linger_ms;
        while (now_ms() < deadline) {
            if (all_peers_closed())
                break;
            pollfd pfd{fd_, POLLIN, 0};
            ::poll(&pfd, 1, 5);
            drain(sink);
            service();
        }
    }

private:
    struct Unacked {
        std::uint64_t seq = 0;
        std::uint16_t frame_count = 0;
        std::vector<std::uint8_t> frames;
        int attempt = 1;
        std::int64_t deadline_ms = 0;
    };

    struct Stashed {
        PacketHeader header;
        std::vector<std::uint8_t> payload;
    };

    struct Peer {
        sockaddr_in addr{};
        std::uint64_t next_seq_out = 1;
        std::deque<Unacked> unacked;
        std::uint64_t cum_in = 0;  // highest in-order seq received
        std::map<std::uint64_t, Stashed> reorder;
        bool need_ack = false;
        bool bye_seen = false;
    };

    std::uint64_t rto_ms(int attempt) const
    {
        return rto_config_.rto(std::min(attempt, rto_config_.max_attempts),
                               kAssumedRttMs);
    }

    void sendto_peer(const Peer& p, const std::vector<std::uint8_t>& pkt)
    {
        // EAGAIN/ENOBUFS and ICMP-reflected errors (ECONNREFUSED while the
        // peer has not bound yet) are all absorbed: every data packet is
        // covered by retransmission and every ack by the peer's next
        // duplicate. This is what makes a UDP run need no handshake.
        (void)::sendto(fd_, pkt.data(), pkt.size(), 0,
                       reinterpret_cast<const sockaddr*>(&p.addr),
                       sizeof p.addr);
        ++stats_.packets_out;
        stats_.bytes_out += pkt.size();
    }

    void transmit(int peer, const Unacked& u)
    {
        Peer& p = peers_[static_cast<std::size_t>(peer)];
        scratch_.clear();
        PacketHeader h;
        h.kind = PacketKind::Frames;
        h.src_rank = static_cast<std::uint16_t>(rank_);
        h.frame_count = u.frame_count;
        h.session = session_;
        h.seq = u.seq;
        h.ack = p.cum_in;  // piggybacked cumulative ack, always fresh
        append_packet_header(scratch_, h);
        scratch_.insert(scratch_.end(), u.frames.begin(), u.frames.end());
        sendto_peer(p, scratch_);
        p.need_ack = false;
    }

    void send_control(int peer, PacketKind kind)
    {
        Peer& p = peers_[static_cast<std::size_t>(peer)];
        scratch_.clear();
        PacketHeader h;
        h.kind = kind;
        h.src_rank = static_cast<std::uint16_t>(rank_);
        h.session = session_;
        h.ack = p.cum_in;
        append_packet_header(scratch_, h);
        sendto_peer(p, scratch_);
        p.need_ack = false;
        if (kind == PacketKind::AckOnly)
            ++stats_.acks;
    }

    void process_ack(Peer& p, std::uint64_t ack)
    {
        while (!p.unacked.empty() && p.unacked.front().seq <= ack)
            p.unacked.pop_front();
    }

    // Receives every queued datagram; returns true if any in-order Frames
    // packet reached the sink.
    bool drain(const PacketSink& sink)
    {
        bool delivered = false;
        for (;;) {
            const ssize_t got =
                ::recvfrom(fd_, rxbuf_, sizeof rxbuf_, 0, nullptr, nullptr);
            if (got < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    break;
                if (errno == EINTR || errno == ECONNREFUSED)
                    continue;
                throw_errno("recvfrom(udp)");
            }
            ++stats_.packets_in;
            stats_.bytes_in += static_cast<std::uint64_t>(got);
            delivered |= on_datagram(rxbuf_, static_cast<std::size_t>(got), sink);
        }
        return delivered;
    }

    bool on_datagram(const std::uint8_t* data, std::size_t len,
                     const PacketSink& sink)
    {
        PacketHeader h;
        if (parse_packet_header(data, len, h) != WireError::Ok) {
            ++stats_.malformed;
            return false;
        }
        // Structural sender validation: a rank outside the run or
        // ourselves — drop and count, never deliver.
        if (h.src_rank >= procs_ || h.src_rank == rank_) {
            ++stats_.malformed;
            return false;
        }
        if (h.session != session_) {
            // A stale session: an earlier network instance on the same
            // ports. Crossing Bye/AckOnly stragglers from a peer's previous
            // teardown are expected when networks are constructed back to
            // back (the mutation battery does exactly that) — ignore them
            // silently. Stale *data* is counted: it is either a very late
            // retransmission or a forgery, and both deserve a counter.
            if (h.kind != PacketKind::Bye && h.kind != PacketKind::AckOnly)
                ++stats_.malformed;
            return false;
        }
        Peer& p = peers_[h.src_rank];
        process_ack(p, h.ack);
        switch (h.kind) {
        case PacketKind::AckOnly:
        case PacketKind::Hello:
            return false;
        case PacketKind::Bye:
            p.bye_seen = true;
            return false;
        case PacketKind::Frames:
            break;
        }
        if (h.seq <= p.cum_in) {
            // Our ack was lost; re-ack so the sender stops retransmitting.
            ++stats_.duplicates;
            p.need_ack = true;
            return false;
        }
        if (h.seq != p.cum_in + 1) {
            if (p.reorder.size() < kMaxReorder && !p.reorder.count(h.seq)) {
                Stashed s;
                s.header = h;
                s.payload.assign(data + kPacketHeaderBytes, data + len);
                p.reorder.emplace(h.seq, std::move(s));
            }
            p.need_ack = true;  // carries cum_in: a NACK in effect
            return false;
        }
        // In order: deliver, then flush any stashed successors.
        bool delivered = false;
        sink(h, data + kPacketHeaderBytes, len - kPacketHeaderBytes);
        p.cum_in = h.seq;
        delivered = true;
        auto it = p.reorder.begin();
        while (it != p.reorder.end() && it->first == p.cum_in + 1) {
            sink(it->second.header, it->second.payload.data(),
                 it->second.payload.size());
            p.cum_in = it->first;
            it = p.reorder.erase(it);
        }
        p.reorder.erase(p.reorder.begin(), p.reorder.lower_bound(p.cum_in + 1));
        p.need_ack = true;
        return delivered;
    }

    // Sends due acks and retransmits overdue packets.
    void service()
    {
        const std::int64_t now = now_ms();
        for (int r = 0; r < procs_; ++r) {
            if (r == rank_)
                continue;
            Peer& p = peers_[static_cast<std::size_t>(r)];
            for (Unacked& u : p.unacked) {
                if (u.deadline_ms > now)
                    continue;
                ++stats_.timeouts;
                ++stats_.retransmissions;
                ++u.attempt;
                u.deadline_ms = now + static_cast<std::int64_t>(rto_ms(u.attempt));
                transmit(r, u);
            }
            if (p.need_ack)
                send_control(r, PacketKind::AckOnly);
        }
    }

    // How long poll may sleep before a retransmission timer could fire.
    std::int64_t next_timer_slice() const
    {
        const std::int64_t now = now_ms();
        std::int64_t slice = 20;
        for (const Peer& p : peers_) {
            for (const Unacked& u : p.unacked)
                slice = std::min(slice, std::max<std::int64_t>(
                                            1, u.deadline_ms - now));
        }
        return slice;
    }

    bool all_peers_closed() const
    {
        for (int r = 0; r < procs_; ++r) {
            if (r == rank_)
                continue;
            const Peer& p = peers_[static_cast<std::size_t>(r)];
            if (!p.bye_seen || !p.unacked.empty())
                return false;
        }
        return true;
    }

    int procs_;
    int rank_;
    std::uint64_t session_;
    int fd_ = -1;
    std::vector<Peer> peers_;
    std::vector<std::uint8_t> scratch_;
    std::uint8_t rxbuf_[65536];
    FaultConfig rto_config_;  // defaults: the shim's backoff schedule
    bool shut_ = false;
};

// ------------------------------------------------------------------ TCP

class TcpTransport final : public Transport {
public:
    TcpTransport(const SocketConfig& cfg, std::uint64_t session)
        : procs_(cfg.procs), rank_(cfg.rank), session_(session),
          peers_(static_cast<std::size_t>(cfg.procs))
    {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd_ < 0)
            throw_errno("socket(tcp)");
        const int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in self = make_addr(cfg.host,
                                     PeerTable::port_of(cfg.base_port, rank_));
        if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&self), sizeof self) < 0)
            throw_errno("bind(tcp)");
        if (::listen(listen_fd_, procs_) < 0)
            throw_errno("listen(tcp)");
        set_nonblocking(listen_fd_);
        establish_mesh(cfg);
    }

    ~TcpTransport() override
    {
        for (Peer& p : peers_) {
            if (p.fd >= 0)
                ::close(p.fd);
        }
        if (listen_fd_ >= 0)
            ::close(listen_fd_);
    }

    void send_frames(int peer, const std::uint8_t* frames, std::size_t len,
                     std::uint16_t frame_count) override
    {
        Peer& p = peers_[static_cast<std::size_t>(peer)];
        PacketHeader h;
        h.kind = PacketKind::Frames;
        h.src_rank = static_cast<std::uint16_t>(rank_);
        h.frame_count = frame_count;
        h.session = session_;
        enqueue_record(p, h, frames, len);
        flush_out(p);
    }

    bool poll(int timeout_ms, const PacketSink& sink) override
    {
        const std::int64_t deadline = now_ms() + timeout_ms;
        bool delivered = pump(0, sink);
        while (!delivered) {
            const std::int64_t now = now_ms();
            if (now >= deadline)
                break;
            delivered = pump(static_cast<int>(deadline - now), sink);
        }
        return delivered;
    }

    void shutdown(int linger_ms, const PacketSink& sink) override
    {
        if (shut_)
            return;
        shut_ = true;
        for (int r = 0; r < procs_; ++r) {
            if (r == rank_)
                continue;
            Peer& p = peers_[static_cast<std::size_t>(r)];
            PacketHeader h;
            h.kind = PacketKind::Bye;
            h.src_rank = static_cast<std::uint16_t>(rank_);
            h.session = session_;
            enqueue_record(p, h, nullptr, 0);
        }
        // Drain our outbufs AND read every peer's Bye before the fds close.
        // Closing a TCP socket with unread bytes in its receive buffer
        // turns the close into an RST, which can discard our own in-flight
        // Bye and hand the slower rank a spurious reset; waiting for the
        // reciprocal Bye (as UDP waits in all_peers_closed) keeps the
        // teardown a pair of orderly FINs.
        const std::int64_t deadline = now_ms() + linger_ms;
        while (now_ms() < deadline) {
            bool pending = false;
            for (int r = 0; r < procs_; ++r) {
                if (r == rank_)
                    continue;
                const Peer& p = peers_[static_cast<std::size_t>(r)];
                pending |= p.out_off < p.out.size() || !p.bye_seen;
            }
            if (!pending)
                break;
            pump(5, sink);
        }
    }

private:
    struct Peer {
        int fd = -1;
        std::vector<std::uint8_t> in;
        std::size_t in_off = 0;
        std::vector<std::uint8_t> out;
        std::size_t out_off = 0;
        bool bye_seen = false;
    };

    // Mesh convention: rank r initiates connections to every s < r and
    // accepts from every s > r. BOTH sides open with a Hello record naming
    // their rank and session, and a peer counts as connected only once the
    // other side's hello arrived. One-way counting is not enough: when
    // networks run back to back on the same ports, a connect() can land in
    // the kernel backlog of the peer's *previous* instance's listener —
    // the TCP handshake succeeds, then the connection is reset at that
    // instance's teardown. The reciprocal hello proves the fd reaches a
    // live current-session transport; anything else (reset, stale session,
    // garbage) is dropped and the dial retried until the deadline.
    void establish_mesh(const SocketConfig& cfg)
    {
        const std::int64_t deadline = now_ms() + cfg.handshake_timeout_ms;
        int connected = 0;
        const int expected = procs_ - 1;
        std::map<int, int> dialing;  // peer rank -> fd awaiting its hello
        std::vector<int> unmapped;   // accepted fds whose hello is pending

        while (connected < expected) {
            if (now_ms() > deadline) {
                for (auto& [r, fd] : dialing)
                    ::close(fd);
                for (int fd : unmapped)
                    ::close(fd);
                hello_buf_.clear();
                throw std::runtime_error(
                    "socket transport: tcp mesh handshake timed out (are all "
                    "ranks running?)");
            }
            // Dial every lower rank not yet connected or in progress, and
            // lead with our hello (blocking fd: the record always fits the
            // send buffer of a fresh connection).
            for (int r = 0; r < rank_; ++r) {
                if (peers_[static_cast<std::size_t>(r)].fd >= 0 ||
                    dialing.count(r))
                    continue;
                const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
                if (fd < 0)
                    throw_errno("socket(tcp dial)");
                sockaddr_in addr = make_addr(
                    cfg.host, PeerTable::port_of(cfg.base_port, r));
                if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                              sizeof addr) != 0 ||
                    !send_hello_blocking(fd)) {
                    ::close(fd);  // peer not listening yet; retry
                    continue;
                }
                set_nonblocking(fd);
                dialing[r] = fd;
            }
            // Await reciprocal hellos on in-progress dials.
            for (auto it = dialing.begin(); it != dialing.end();) {
                const int got = try_read_hello(it->second, it->first,
                                               /*reply=*/false);
                if (got == kHelloDead || got >= 0)
                    it = dialing.erase(it);  // mapped, or redial next pass
                else
                    ++it;
                if (got >= 0)
                    ++connected;
            }
            // Accept dials from higher ranks.
            for (;;) {
                const int fd = ::accept(listen_fd_, nullptr, nullptr);
                if (fd < 0)
                    break;
                set_nonblocking(fd);
                unmapped.push_back(fd);
            }
            // Read hellos off unmapped connections, answering each valid
            // one with our own hello.
            for (std::size_t i = 0; i < unmapped.size();) {
                const int got = try_read_hello(unmapped[i], kAnyHigherRank,
                                               /*reply=*/true);
                if (got == kHelloDead || got >= 0) {
                    unmapped[i] = unmapped.back();
                    unmapped.pop_back();
                } else {
                    ++i;
                }
                if (got >= 0)
                    ++connected;
            }
            if (connected < expected) {
                // Keep reciprocal hellos draining while we wait.
                for (Peer& p : peers_)
                    if (p.fd >= 0 && p.out_off < p.out.size())
                        flush_out(p);
                pollfd pfd{listen_fd_, POLLIN, 0};
                ::poll(&pfd, 1, 10);
            }
        }
        // Stragglers past a complete mesh are rogue or stale: drop them.
        for (int fd : unmapped) {
            hello_buf_.erase(fd);
            ::close(fd);
        }
    }

    void adopt(int rank, int fd)
    {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        set_nonblocking(fd);
        peers_[static_cast<std::size_t>(rank)].fd = fd;
    }

    // Writes our Hello record to a (blocking) freshly connected fd.
    bool send_hello_blocking(int fd)
    {
        std::vector<std::uint8_t> rec = {
            static_cast<std::uint8_t>(kPacketHeaderBytes), 0, 0, 0};
        PacketHeader h;
        h.kind = PacketKind::Hello;
        h.src_rank = static_cast<std::uint16_t>(rank_);
        h.session = session_;
        append_packet_header(rec, h);
        std::size_t off = 0;
        while (off < rec.size()) {
            const ssize_t sent = ::send(fd, rec.data() + off,
                                        rec.size() - off, MSG_NOSIGNAL);
            if (sent > 0) {
                off += static_cast<std::size_t>(sent);
                continue;
            }
            if (sent < 0 && errno == EINTR)
                continue;
            return false;
        }
        ++stats_.packets_out;
        stats_.bytes_out += rec.size();
        return true;
    }

    static constexpr int kHelloIncomplete = -1;
    static constexpr int kHelloDead = -2;
    static constexpr int kAnyHigherRank = -1;

    // Tries to read the opening Hello record off `fd`. Returns the mapped
    // peer rank, kHelloIncomplete while bytes are pending, or kHelloDead
    // (fd closed and forgotten) on reset, stale session, rank mismatch, or
    // garbage — handshake noise is survivable, never fatal. `expect_rank`
    // pins the sender (a dial knows who it called); kAnyHigherRank accepts
    // any unmapped higher rank. With `reply`, a valid hello is answered
    // with our own (the dialer is waiting for it). Bytes after the hello
    // (the peer may already be sending) land in the peer's inbuf.
    int try_read_hello(int fd, int expect_rank, bool reply)
    {
        auto drop = [&]() {
            ::close(fd);
            hello_buf_.erase(fd);
            return kHelloDead;
        };
        auto& buf = hello_buf_[fd];
        std::uint8_t tmp[4096];
        for (;;) {
            const ssize_t got = ::recv(fd, tmp, sizeof tmp, 0);
            if (got > 0) {
                buf.insert(buf.end(), tmp, tmp + got);
                continue;
            }
            if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            if (got < 0 && errno == EINTR)
                continue;
            return drop();  // closed or errored before identifying itself
        }
        if (buf.size() < 4 + kPacketHeaderBytes)
            return kHelloIncomplete;
        const std::uint32_t rec_len = le32(buf.data());
        if (rec_len < kPacketHeaderBytes || rec_len > kMaxTcpRecord) {
            ++stats_.malformed;
            return drop();
        }
        if (buf.size() < 4 + rec_len)
            return kHelloIncomplete;
        PacketHeader h;
        if (parse_packet_header(buf.data() + 4, rec_len, h) != WireError::Ok ||
            h.kind != PacketKind::Hello || h.src_rank >= procs_ ||
            h.src_rank == rank_ || h.session != session_ ||
            (expect_rank >= 0 && h.src_rank != expect_rank) ||
            (expect_rank == kAnyHigherRank && h.src_rank < rank_)) {
            ++stats_.malformed;
            return drop();
        }
        const int r = h.src_rank;
        Peer& p = peers_[static_cast<std::size_t>(r)];
        if (p.fd >= 0) {
            ++stats_.malformed;  // duplicate hello for a mapped peer
            return drop();
        }
        adopt(r, fd);
        p.in.assign(buf.begin() + 4 + rec_len, buf.end());
        hello_buf_.erase(fd);
        if (reply) {
            PacketHeader hr;
            hr.kind = PacketKind::Hello;
            hr.src_rank = static_cast<std::uint16_t>(rank_);
            hr.session = session_;
            enqueue_record(p, hr, nullptr, 0);
            flush_out(p);
        }
        return r;
    }

    static std::uint32_t le32(const std::uint8_t* p)
    {
        return static_cast<std::uint32_t>(p[0]) |
               (static_cast<std::uint32_t>(p[1]) << 8) |
               (static_cast<std::uint32_t>(p[2]) << 16) |
               (static_cast<std::uint32_t>(p[3]) << 24);
    }

    void enqueue_record(Peer& p, const PacketHeader& h,
                        const std::uint8_t* frames, std::size_t len)
    {
        const std::uint32_t rec_len =
            static_cast<std::uint32_t>(kPacketHeaderBytes + len);
        p.out.push_back(static_cast<std::uint8_t>(rec_len));
        p.out.push_back(static_cast<std::uint8_t>(rec_len >> 8));
        p.out.push_back(static_cast<std::uint8_t>(rec_len >> 16));
        p.out.push_back(static_cast<std::uint8_t>(rec_len >> 24));
        append_packet_header(p.out, h);
        if (len)
            p.out.insert(p.out.end(), frames, frames + len);
        ++stats_.packets_out;
        stats_.bytes_out += 4 + rec_len;
    }

    void flush_out(Peer& p)
    {
        while (p.out_off < p.out.size()) {
            const ssize_t sent = ::send(p.fd, p.out.data() + p.out_off,
                                        p.out.size() - p.out_off, MSG_NOSIGNAL);
            if (sent > 0) {
                p.out_off += static_cast<std::size_t>(sent);
                continue;
            }
            if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                return;  // pump() retries on POLLOUT
            if (sent < 0 && errno == EINTR)
                continue;
            if (shut_ && sent < 0 &&
                (errno == EPIPE || errno == ECONNRESET)) {
                // The peer already tore down; our Bye has nowhere to go.
                p.bye_seen = true;
                p.out.clear();
                p.out_off = 0;
                return;
            }
            throw_errno("send(tcp)");
        }
        p.out.clear();
        p.out_off = 0;
    }

    // One poll + read/write pass over all peer fds.
    bool pump(int timeout_ms, const PacketSink& sink)
    {
        std::vector<pollfd> pfds;
        std::vector<int> ranks;
        for (int r = 0; r < procs_; ++r) {
            if (r == rank_)
                continue;
            Peer& p = peers_[static_cast<std::size_t>(r)];
            short events = POLLIN;
            if (p.out_off < p.out.size())
                events |= POLLOUT;
            pfds.push_back(pollfd{p.fd, events, 0});
            ranks.push_back(r);
        }
        ::poll(pfds.data(), pfds.size(), timeout_ms);
        bool delivered = false;
        for (std::size_t i = 0; i < pfds.size(); ++i) {
            Peer& p = peers_[static_cast<std::size_t>(ranks[i])];
            if (pfds[i].revents & POLLOUT)
                flush_out(p);
            if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR))
                delivered |= read_peer(p, sink);
        }
        return delivered;
    }

    bool read_peer(Peer& p, const PacketSink& sink)
    {
        std::uint8_t tmp[65536];
        for (;;) {
            const ssize_t got = ::recv(p.fd, tmp, sizeof tmp, 0);
            if (got > 0) {
                stats_.bytes_in += static_cast<std::uint64_t>(got);
                p.in.insert(p.in.end(), tmp, tmp + got);
                continue;
            }
            if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            if (got < 0 && errno == EINTR)
                continue;
            if (got == 0 || errno == ECONNRESET) {
                // Orderly close, or a reset racing the peer's teardown
                // (its close can RST if our Bye sat unread in its receive
                // buffer). Either way the stream is over; the kernel hands
                // back bytes queued before the reset, so anything already
                // buffered still parses. A peer that vanished mid-run
                // surfaces as the round timeout, not a spurious errno.
                p.bye_seen = true;
                break;
            }
            throw_errno("recv(tcp)");
        }
        return parse_records(p, sink);
    }

    bool parse_records(Peer& p, const PacketSink& sink)
    {
        bool delivered = false;
        for (;;) {
            const std::size_t avail = p.in.size() - p.in_off;
            if (avail < 4)
                break;
            const std::uint32_t rec_len = le32(p.in.data() + p.in_off);
            if (rec_len < kPacketHeaderBytes || rec_len > kMaxTcpRecord) {
                // A TCP stream cannot resynchronize after a framing error;
                // this is fatal, unlike a droppable UDP datagram.
                ++stats_.malformed;
                throw std::runtime_error(
                    "socket transport: tcp stream framing error");
            }
            if (avail < 4 + rec_len)
                break;
            const std::uint8_t* rec = p.in.data() + p.in_off + 4;
            ++stats_.packets_in;
            PacketHeader h;
            if (parse_packet_header(rec, rec_len, h) != WireError::Ok ||
                h.src_rank >= procs_ || h.session != session_) {
                ++stats_.malformed;
                throw std::runtime_error(
                    "socket transport: tcp stream packet error");
            }
            if (h.kind == PacketKind::Bye) {
                p.bye_seen = true;
            } else if (h.kind == PacketKind::Frames) {
                sink(h, rec + kPacketHeaderBytes, rec_len - kPacketHeaderBytes);
                delivered = true;
            }
            p.in_off += 4 + rec_len;
        }
        if (p.in_off == p.in.size()) {
            p.in.clear();
            p.in_off = 0;
        } else if (p.in_off > (64 << 10)) {
            p.in.erase(p.in.begin(),
                       p.in.begin() + static_cast<std::ptrdiff_t>(p.in_off));
            p.in_off = 0;
        }
        return delivered;
    }

    int procs_;
    int rank_;
    std::uint64_t session_;
    int listen_fd_ = -1;
    std::vector<Peer> peers_;
    std::map<int, std::vector<std::uint8_t>> hello_buf_;
    bool shut_ = false;
};

}  // namespace

std::unique_ptr<Transport> make_transport(const SocketConfig& cfg,
                                          std::uint64_t session)
{
    if (cfg.procs < 2)
        throw std::invalid_argument("make_transport: needs procs >= 2");
    if (cfg.base_port <= 0 || cfg.base_port + cfg.procs > 65536)
        throw std::invalid_argument("make_transport: invalid base_port");
    if (cfg.transport == SocketConfig::Transport::Udp)
        return std::make_unique<UdpTransport>(cfg, session);
    return std::make_unique<TcpTransport>(cfg, session);
}

}  // namespace dmst
