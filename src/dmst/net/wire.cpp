#include "dmst/net/wire.h"

namespace dmst {

// Byte-arithmetic load/store: endianness-fixed, alignment-free, and — the
// property the fuzz suite leans on — impossible to over-read as long as
// the callers bound-check the byte counts, which they do below.
namespace {

void store16(std::vector<std::uint8_t>& buf, std::uint16_t v)
{
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

void store32(std::vector<std::uint8_t>& buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void store64(std::vector<std::uint8_t>& buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void store64_at(std::vector<std::uint8_t>& buf, std::size_t off, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf[off + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t load16(const std::uint8_t* p)
{
    return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

std::uint32_t load32(const std::uint8_t* p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t{p[i]} << (8 * i);
    return v;
}

std::uint64_t load64(const std::uint8_t* p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t{p[i]} << (8 * i);
    return v;
}

// Packet header byte offsets (total kPacketHeaderBytes = 40):
//   0  u32 magic        4  u8 version      5  u8 kind
//   6  u16 src_rank     8  u16 frame_count 10 u16 reserved
//   12 u32 reserved     16 u64 session     24 u64 seq
//   32 u64 ack
constexpr std::size_t kOffFrameCount = 8;
constexpr std::size_t kOffSeq = 24;
constexpr std::size_t kOffAck = 32;

// Frame header byte offsets (total kFrameHeaderBytes = 24):
//   0 u8 kind   1 u8 reserved   2 u16 nwords   4 u32 tag
//   8 u64 round 16 u32 dst_vertex 20 u32 port

}  // namespace

std::uint64_t WireFrame::word(std::size_t i) const
{
    return load64(payload + 8 * i);
}

const char* wire_error_name(WireError e)
{
    switch (e) {
    case WireError::Ok:
        return "ok";
    case WireError::Short:
        return "short";
    case WireError::BadMagic:
        return "bad-magic";
    case WireError::BadVersion:
        return "bad-version";
    case WireError::BadPacketKind:
        return "bad-packet-kind";
    case WireError::BadFrameKind:
        return "bad-frame-kind";
    case WireError::Oversized:
        return "oversized";
    case WireError::TrailingBytes:
        return "trailing-bytes";
    case WireError::FrameCountMismatch:
        return "frame-count-mismatch";
    }
    return "?";
}

void append_packet_header(std::vector<std::uint8_t>& buf, const PacketHeader& h)
{
    store32(buf, kWireMagic);
    buf.push_back(kWireVersion);
    buf.push_back(static_cast<std::uint8_t>(h.kind));
    store16(buf, h.src_rank);
    store16(buf, h.frame_count);
    store16(buf, 0);
    store32(buf, 0);
    store64(buf, h.session);
    store64(buf, h.seq);
    store64(buf, h.ack);
}

void patch_packet_header(std::vector<std::uint8_t>& buf, std::size_t header_off,
                         std::uint16_t frame_count, std::uint64_t seq,
                         std::uint64_t ack)
{
    buf[header_off + kOffFrameCount] = static_cast<std::uint8_t>(frame_count);
    buf[header_off + kOffFrameCount + 1] =
        static_cast<std::uint8_t>(frame_count >> 8);
    store64_at(buf, header_off + kOffSeq, seq);
    store64_at(buf, header_off + kOffAck, ack);
}

void append_frame(std::vector<std::uint8_t>& buf, FrameKind kind,
                  std::uint32_t tag, std::uint64_t round,
                  std::uint32_t dst_vertex, std::uint32_t port,
                  const std::uint64_t* words, std::size_t nwords)
{
    buf.push_back(static_cast<std::uint8_t>(kind));
    buf.push_back(0);
    store16(buf, static_cast<std::uint16_t>(nwords));
    store32(buf, tag);
    store64(buf, round);
    store32(buf, dst_vertex);
    store32(buf, port);
    for (std::size_t i = 0; i < nwords; ++i)
        store64(buf, words[i]);
}

WireError parse_packet_header(const std::uint8_t* data, std::size_t len,
                              PacketHeader& out)
{
    if (len < kPacketHeaderBytes)
        return WireError::Short;
    if (load32(data) != kWireMagic)
        return WireError::BadMagic;
    if (data[4] != kWireVersion)
        return WireError::BadVersion;
    const std::uint8_t kind = data[5];
    if (kind < static_cast<std::uint8_t>(PacketKind::Frames) ||
        kind > static_cast<std::uint8_t>(PacketKind::Bye))
        return WireError::BadPacketKind;
    out.kind = static_cast<PacketKind>(kind);
    out.src_rank = load16(data + 6);
    out.frame_count = load16(data + 8);
    out.session = load64(data + 16);
    out.seq = load64(data + 24);
    out.ack = load64(data + 32);
    return WireError::Ok;
}

FrameCursor frame_cursor(const std::uint8_t* payload, std::size_t len,
                         const PacketHeader& h)
{
    FrameCursor c;
    c.p = payload;
    c.end = payload + len;
    c.remaining = h.frame_count;
    return c;
}

WireError next_frame(FrameCursor& c, WireFrame& out)
{
    if (c.remaining == 0)
        return WireError::FrameCountMismatch;
    if (static_cast<std::size_t>(c.end - c.p) < kFrameHeaderBytes)
        return WireError::Short;
    const std::uint8_t kind = c.p[0];
    if (kind < static_cast<std::uint8_t>(FrameKind::Data) ||
        kind > static_cast<std::uint8_t>(FrameKind::Reduce))
        return WireError::BadFrameKind;
    out.kind = static_cast<FrameKind>(kind);
    out.nwords = load16(c.p + 2);
    if (out.nwords > kMaxFrameWords)
        return WireError::Oversized;
    out.tag = load32(c.p + 4);
    out.round = load64(c.p + 8);
    out.dst_vertex = load32(c.p + 16);
    out.port = load32(c.p + 20);
    const std::size_t need =
        kFrameHeaderBytes + 8 * static_cast<std::size_t>(out.nwords);
    if (static_cast<std::size_t>(c.end - c.p) < need)
        return WireError::Short;
    out.payload = c.p + kFrameHeaderBytes;
    c.p += need;
    --c.remaining;
    return WireError::Ok;
}

WireError finish_frames(const FrameCursor& c)
{
    if (c.remaining != 0)
        return WireError::FrameCountMismatch;
    if (c.p != c.end)
        return WireError::TrailingBytes;
    return WireError::Ok;
}

}  // namespace dmst
