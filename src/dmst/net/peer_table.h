#ifndef DMST_NET_PEER_TABLE_H
#define DMST_NET_PEER_TABLE_H

#include <cstdint>
#include <string>
#include <vector>

#include "dmst/congest/network_base.h"
#include "dmst/graph/graph.h"
#include "dmst/util/assert.h"

namespace dmst {

// Maps vertices to ranks and ranks to transport endpoints for the socket
// backend. Vertices are sharded into contiguous, balanced blocks: rank r
// owns [n*r/procs, n*(r+1)/procs). Contiguity keeps the ownership test one
// comparison pair and lets every driver iterate its local span directly;
// balance keeps per-rank work within one vertex of even. A rank's endpoint
// is (host, base_port + rank) — single-host for now, but nothing below the
// table assumes it.
class PeerTable {
public:
    PeerTable(std::size_t n, int procs)
        : n_(n), procs_(procs)
    {
        DMST_ASSERT_MSG(procs >= 1, "peer table: procs must be >= 1");
        begins_.resize(static_cast<std::size_t>(procs) + 1);
        for (int r = 0; r <= procs; ++r)
            begins_[static_cast<std::size_t>(r)] = static_cast<VertexId>(
                n * static_cast<std::uint64_t>(r) / static_cast<std::uint64_t>(procs));
    }

    std::size_t n() const { return n_; }
    int procs() const { return procs_; }

    VertexId block_begin(int rank) const
    {
        return begins_[static_cast<std::size_t>(rank)];
    }
    VertexId block_end(int rank) const
    {
        return begins_[static_cast<std::size_t>(rank) + 1];
    }

    // Rank owning vertex v. The blocks are contiguous and sorted, so this
    // is a binary search over at most procs+1 block starts.
    int owner(VertexId v) const
    {
        DMST_ASSERT_MSG(v < n_, "peer table: vertex out of range");
        int lo = 0;
        int hi = procs_ - 1;
        while (lo < hi) {
            const int mid = (lo + hi) / 2;
            if (v < block_end(mid))
                hi = mid;
            else
                lo = mid + 1;
        }
        return lo;
    }

    // UDP/TCP port of rank r under `base_port` (rank r listens there).
    static int port_of(int base_port, int rank) { return base_port + rank; }

private:
    std::size_t n_;
    int procs_;
    std::vector<VertexId> begins_;
};

}  // namespace dmst

#endif  // DMST_NET_PEER_TABLE_H
