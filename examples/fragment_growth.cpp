// Visualizes the (n/k, O(k))-MST forests that Controlled-GHS builds on a
// grid: each cell shows a letter identifying its fragment. Growing k
// produces fewer, larger fragments with controlled diameters — the paper's
// base forest trade-off made visible.

#include <iostream>
#include <map>

#include "dmst/core/controlled_ghs.h"
#include "dmst/graph/generators.h"
#include "dmst/util/cli.h"
#include "dmst/util/rng.h"

int main(int argc, char** argv)
{
    using namespace dmst;

    Args args;
    args.define("rows", "12", "grid rows");
    args.define("cols", "32", "grid columns");
    args.define("seed", "3", "weight seed");
    try {
        args.parse(argc, argv);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n" << args.help();
        return 1;
    }
    const std::size_t rows = args.get_int("rows");
    const std::size_t cols = args.get_int("cols");

    Rng rng(args.get_int("seed"));
    auto g = gen_grid(rows, cols, rng);

    for (std::uint64_t k : {2ull, 4ull, 16ull, 64ull}) {
        auto r = run_controlled_ghs(g, GhsOptions{.k = k});

        // Stable letter per fragment, in first-appearance order.
        std::map<std::uint64_t, char> letter;
        const char* alphabet =
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
        for (std::uint64_t fid : r.fragment_id) {
            if (!letter.count(fid))
                letter[fid] = alphabet[letter.size() % 62];
        }

        std::cout << "k=" << k << ": " << r.fragment_count()
                  << " fragments, rounds=" << r.stats.rounds
                  << ", messages=" << r.stats.messages << "\n";
        for (std::size_t row = 0; row < rows; ++row) {
            for (std::size_t col = 0; col < cols; ++col)
                std::cout << letter[r.fragment_id[row * cols + col]];
            std::cout << "\n";
        }
        std::cout << "\n";
    }
    return 0;
}
