// Compare the three distributed MST algorithms in this library on a chosen
// workload: the Elkin algorithm, the GKP Pipeline baseline, and the
// GHS-style synchronous Boruvka baseline. All three must return the same
// (unique) MST; they differ in round and message complexity.

#include <iostream>

#include "dmst/core/elkin_mst.h"
#include "dmst/core/pipeline_mst.h"
#include "dmst/core/sync_boruvka.h"
#include "dmst/exp/workloads.h"
#include "dmst/graph/metrics.h"
#include "dmst/seq/mst.h"
#include "dmst/util/cli.h"
#include "dmst/util/table.h"

int main(int argc, char** argv)
{
    using namespace dmst;

    Args args;
    args.define("family", "cliques8", "workload family (see exp/workloads.h)");
    args.define("n", "512", "graph size");
    args.define("seed", "1", "generator seed");
    try {
        args.parse(argc, argv);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n" << args.help();
        return 1;
    }

    auto g = make_workload(args.get("family"), args.get_int("n"),
                           args.get_int("seed"));
    std::cout << "workload " << args.get("family") << ": n=" << g.vertex_count()
              << " m=" << g.edge_count()
              << " D=" << hop_diameter_estimate(g) << "\n\n";

    auto elkin = run_elkin_mst(g, ElkinOptions{});
    auto gkp = run_pipeline_mst(g, {});
    auto boruvka = run_sync_boruvka(g);

    Table t({"algorithm", "rounds", "messages", "mst_weight"});
    t.new_row().add(std::string("elkin")).add(elkin.stats.rounds)
        .add(elkin.stats.messages)
        .add(total_weight(g, elkin.mst_edges));
    t.new_row().add(std::string("gkp_pipeline")).add(gkp.stats.rounds)
        .add(gkp.stats.messages)
        .add(total_weight(g, gkp.mst_edges));
    t.new_row().add(std::string("sync_boruvka")).add(boruvka.stats.rounds)
        .add(boruvka.stats.messages)
        .add(total_weight(g, boruvka.mst_edges));
    t.print(std::cout);

    bool agree =
        elkin.mst_edges == gkp.mst_edges && elkin.mst_edges == boruvka.mst_edges;
    std::cout << "\nall algorithms agree: " << (agree ? "yes" : "NO") << "\n";
    return agree ? 0 : 1;
}
