// Quickstart: build a random weighted graph, run the Elkin distributed MST
// algorithm in the simulated CONGEST network, and verify the result against
// sequential Kruskal.

#include <iostream>

#include "dmst/core/elkin_mst.h"
#include "dmst/graph/generators.h"
#include "dmst/seq/mst.h"
#include "dmst/util/rng.h"

int main()
{
    using namespace dmst;

    // A connected Erdős–Rényi graph with 200 vertices and 600 edges.
    Rng rng(/*seed=*/1);
    WeightedGraph g = gen_erdos_renyi(200, 600, rng);

    // Run the distributed algorithm. Every vertex is simulated as a
    // CONGEST processor; the result tells us, per vertex, which incident
    // edges belong to the MST, plus global round/message counts.
    DistributedMstResult dist = run_elkin_mst(g, ElkinOptions{});

    // Cross-check against the sequential reference.
    MstResult seq = mst_kruskal(g);
    bool identical = dist.mst_edges == seq.edges;

    std::cout << "graph: n=" << g.vertex_count() << " m=" << g.edge_count()
              << "\n"
              << "distributed MST weight: " << total_weight(g, dist.mst_edges)
              << "\n"
              << "sequential  MST weight: " << seq.total_weight << "\n"
              << "edge sets identical:    " << (identical ? "yes" : "NO") << "\n"
              << "rounds:                 " << dist.stats.rounds << "\n"
              << "messages:               " << dist.stats.messages << "\n"
              << "base-forest parameter k=" << dist.k_used << ", "
              << dist.base_fragments << " base fragments, "
              << dist.boruvka_phases << " Boruvka phase(s)\n";
    return identical ? 0 : 1;
}
