// CONGEST(b log n) demo: the same MST computation at increasing per-edge
// bandwidth. Rounds shrink with the sqrt(n/b) term of Theorem 3.2 while the
// message count stays essentially flat.

#include <iostream>

#include "dmst/core/elkin_mst.h"
#include "dmst/exp/workloads.h"
#include "dmst/graph/metrics.h"
#include "dmst/util/cli.h"
#include "dmst/util/table.h"

int main(int argc, char** argv)
{
    using namespace dmst;

    Args args;
    args.define("family", "er", "workload family (see exp/workloads.h)");
    args.define("n", "1024", "graph size");
    args.define("seed", "2", "generator seed");
    try {
        args.parse(argc, argv);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n" << args.help();
        return 1;
    }

    auto g = make_workload(args.get("family"), args.get_int("n"),
                           args.get_int("seed"));
    std::cout << "workload " << args.get("family") << ": n=" << g.vertex_count()
              << " m=" << g.edge_count()
              << " D=" << hop_diameter_estimate(g) << "\n\n";

    Table t({"b", "k", "rounds", "messages"});
    for (int b : {1, 2, 4, 8, 16, 32}) {
        ElkinOptions opts;
        opts.bandwidth = b;
        auto r = run_elkin_mst(g, opts);
        t.new_row()
            .add(static_cast<std::int64_t>(b))
            .add(r.k_used)
            .add(r.stats.rounds)
            .add(r.stats.messages);
    }
    t.print(std::cout);
    return 0;
}
