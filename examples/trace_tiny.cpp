// Message-level trace of the Elkin algorithm on a tiny graph: prints the
// per-round message counts so the protocol stages (BFS wave, Controlled-GHS
// phases, registration, Boruvka phases) are visible in the traffic pattern.

#include <iostream>

#include "dmst/congest/network.h"
#include "dmst/core/elkin_mst.h"
#include "dmst/graph/generators.h"
#include "dmst/util/cli.h"
#include "dmst/util/rng.h"

int main(int argc, char** argv)
{
    using namespace dmst;

    Args args;
    args.define("n", "24", "graph size");
    args.define("m", "48", "edge count");
    args.define("seed", "4", "generator seed");
    try {
        args.parse(argc, argv);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n" << args.help();
        return 1;
    }

    Rng rng(args.get_int("seed"));
    auto g = gen_erdos_renyi(args.get_int("n"), args.get_int("m"), rng);
    auto r = run_elkin_mst(g, ElkinOptions{});

    std::cout << "n=" << g.vertex_count() << " m=" << g.edge_count()
              << " k=" << r.k_used << " rounds=" << r.stats.rounds
              << " messages=" << r.stats.messages << "\n\n";
    std::cout << "round : messages (one '#' per 8 messages)\n";
    for (std::size_t round = 0; round < r.stats.messages_per_round.size();
         ++round) {
        std::uint64_t count = r.stats.messages_per_round[round];
        if (count == 0)
            continue;
        std::cout.width(5);
        std::cout << round + 1 << " : ";
        std::cout.width(5);
        std::cout << count << "  ";
        for (std::uint64_t i = 0; i < count; i += 8)
            std::cout << '#';
        std::cout << "\n";
    }
    std::cout << "\nMST edges (" << r.mst_edges.size() << "):";
    for (EdgeId e : r.mst_edges)
        std::cout << " " << g.edge(e).u << "-" << g.edge(e).v;
    std::cout << "\n";
    return 0;
}
