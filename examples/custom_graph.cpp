// Runs the distributed MST on a user-supplied edge-list file (format: see
// src/dmst/graph/io.h). With --file=- (or no file) a small demo graph is
// generated and also written to stdout so the format is self-documenting.

#include <iostream>

#include "dmst/core/elkin_mst.h"
#include "dmst/graph/generators.h"
#include "dmst/graph/io.h"
#include "dmst/graph/metrics.h"
#include "dmst/util/cli.h"
#include "dmst/util/rng.h"

int main(int argc, char** argv)
{
    using namespace dmst;

    Args args;
    args.define("file", "-", "edge-list file ('-' = generate a demo graph)");
    args.define("bandwidth", "1", "CONGEST(b log n) bandwidth");
    try {
        args.parse(argc, argv);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n" << args.help();
        return 1;
    }

    WeightedGraph g = [&] {
        if (args.get("file") == "-") {
            Rng rng(5);
            auto demo = gen_erdos_renyi(12, 24, rng);
            std::cout << "# no --file given; using this demo graph:\n";
            write_edge_list(std::cout, demo);
            std::cout << "\n";
            return demo;
        }
        return read_edge_list_file(args.get("file"));
    }();

    if (!is_connected(g)) {
        std::cerr << "graph is disconnected; MST undefined\n";
        return 1;
    }

    ElkinOptions opts;
    opts.bandwidth = static_cast<int>(args.get_int("bandwidth"));
    auto r = run_elkin_mst(g, opts);
    std::cout << "MST (" << r.mst_edges.size() << " edges, rounds "
              << r.stats.rounds << ", messages " << r.stats.messages << "):\n";
    for (EdgeId e : r.mst_edges) {
        const Edge& edge = g.edge(e);
        std::cout << "  " << edge.u << " - " << edge.v << "  (w=" << edge.w
                  << ")\n";
    }
    return 0;
}
