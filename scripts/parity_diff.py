#!/usr/bin/env python3
"""Cross-engine parity diff over scenario_runner JSONL output.

Groups rows by scenario point (algorithm, family, n, bandwidth, and the
conditioner axes) and enforces the engines' equivalence contracts:

  - lock-step engines (serial, parallel at every thread count) must be
    bit-identical per point: rounds, messages, words, mst_weight, the
    oracle verdict, and the in-model verification block;
  - async-engine rows behind a synchronizer (sync alpha or beta; the
    "sync" field defaults to alpha when absent, for pre-sync-axis JSONL)
    must match the point's serial row on mst_weight, verdicts, and the
    payload counters (messages/words, verify_messages/verify_words) at
    every max_delay x event_seed point. rounds are excluded: async pulse
    levels may exceed the serial count by the documented endgame skew,
    and the synchronizer metrics (events, virtual_time, sync_*) are
    async-only;
  - natively-dispatched rows (sync == "none": a message-driven driver,
    no synchronizer) must match the serial row on mst_weight and the
    verdict block and carry exactly zero synchronizer traffic
    (sync_messages == sync_words == 0). The payload counters are NOT
    compared: a natively asynchronous protocol's message schedule is
    delay-dependent by design — only its output is invariant;
  - async rows at the same (max_delay, event_seed, sync) point but
    different worker counts must be bit-identical on EVERY counter,
    including the async-only ones (rounds, events, virtual_time,
    sync_messages, sync_words): the sharded engine's determinism
    contract says threading never changes the schedule, so any drift
    here is an engine bug even when the serial comparison above still
    passes;
  - socket-engine rows (one per rank of a dmst_launcher launch, grouped
    by transport x procs within the scenario point) merge against the
    point's serial row: every rank 0..procs-1 must appear exactly once
    and be verified; the per-round counters (rounds, verify_rounds) and
    the verdict block must be bit-identical on every rank to the serial
    row; the sender-charged counters (messages, words, mst_weight,
    verify_messages, verify_words) must SUM across the ranks to exactly
    the serial value — each rank reports the slice it owns, and the
    slices partition the run. malformed_frames is deliberately not
    compared: it counts datagrams the receive path dropped (stray
    traffic from outside the run), an environment fact rather than a
    protocol counter.

Reads one or more JSONL files (e.g. one per algorithm from the nightly
grid). Exit status: 0 parity holds, 1 mismatch, 2 bad input.

Usage: parity_diff.py runs1.jsonl [runs2.jsonl ...]
"""

import json
import sys

GROUP_KEYS = ("algorithm", "family", "n", "bandwidth",
              "latency", "hetero_b", "adversarial_order")
LOCKSTEP_COMPARE = ("rounds", "messages", "words", "mst_weight", "verified",
                    "model_verified", "mutations_passed", "mutations_run",
                    "verify_rounds", "verify_messages", "verify_words")
ASYNC_COMPARE = ("messages", "words", "mst_weight", "verified",
                 "model_verified", "mutations_passed", "mutations_run",
                 "verify_messages", "verify_words")
# Native dispatch (sync == "none"): only the output and the verdict block
# are schedule-invariant; payload counters vary with the delay draw.
NATIVE_COMPARE = ("mst_weight", "verified", "model_verified",
                  "mutations_passed", "mutations_run")
ASYNC_THREAD_COMPARE = ASYNC_COMPARE + (
    "rounds", "events", "virtual_time", "sync_messages", "sync_words",
    "verify_rounds")
# Socket-rank merge: fields every rank must match the serial row on
# exactly, and fields whose per-rank values must sum to the serial value.
SOCKET_EQUAL = ("rounds", "verified", "model_verified", "mutations_passed",
                "mutations_run", "verify_rounds")
SOCKET_SUM = ("messages", "words", "mst_weight", "verify_messages",
              "verify_words")


def describe(row):
    where = "/".join(str(row.get(k)) for k in GROUP_KEYS)
    extra = f" engine={row.get('engine')} threads={row.get('threads')}"
    if row.get("engine") == "async":
        extra += (f" max_delay={row.get('max_delay')}"
                  f" event_seed={row.get('event_seed')}"
                  f" sync={row.get('sync', 'alpha')}")
    if row.get("engine") == "socket":
        extra += (f" transport={row.get('transport')}"
                  f" procs={row.get('procs')} rank={row.get('rank')}")
    return where + extra


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2

    groups = {}
    rows = 0
    for path in argv[1:]:
        try:
            with open(path) as f:
                for line_no, line in enumerate(f, 1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        row = json.loads(line)
                    except ValueError as e:
                        print(f"parity_diff: {path}:{line_no}: {e}",
                              file=sys.stderr)
                        return 2
                    key = tuple(row.get(k) for k in GROUP_KEYS)
                    groups.setdefault(key, []).append(row)
                    rows += 1
        except OSError as e:
            print(f"parity_diff: cannot read {path}: {e}", file=sys.stderr)
            return 2

    mismatches = []
    lockstep_pairs = 0
    async_rows = 0
    async_thread_pairs = 0
    socket_launches = 0

    def check(reference, row, fields, kind):
        nonlocal mismatches
        for field in fields:
            if reference.get(field) != row.get(field):
                mismatches.append(
                    f"{kind} {field}: {reference.get(field)} != "
                    f"{row.get(field)}\n    ref: {describe(reference)}\n"
                    f"    row: {describe(row)}")

    def check_socket_launch(serial, launch_rows, key):
        nonlocal mismatches
        (transport, procs), rows = launch_rows
        where = f"{key} transport={transport} procs={procs}"
        if serial is None:
            mismatches.append(f"socket rows without a serial reference at "
                              f"{where}")
            return
        ranks = sorted(r.get("rank") for r in rows)
        if ranks != list(range(procs)):
            mismatches.append(f"socket ranks {ranks} != 0..{procs - 1} at "
                              f"{where}")
            return
        for row in rows:
            if row.get("verified") is False:
                mismatches.append(
                    f"socket rank not verified\n    row: {describe(row)}")
            for field in SOCKET_EQUAL:
                if serial.get(field) != row.get(field):
                    mismatches.append(
                        f"socket {field}: {serial.get(field)} != "
                        f"{row.get(field)}\n    ref: {describe(serial)}\n"
                        f"    row: {describe(row)}")
        for field in SOCKET_SUM:
            if serial.get(field) is None:
                continue
            total = sum(r.get(field, 0) for r in rows)
            if total != serial.get(field):
                mismatches.append(
                    f"socket sum({field}): {total} over {procs} ranks != "
                    f"serial {serial.get(field)} at {where}")

    for key in sorted(groups, key=str):
        group = groups[key]
        lockstep = [r for r in group if r.get("engine") in ("serial",
                                                            "parallel")]
        asyncs = [r for r in group if r.get("engine") == "async"]
        sockets = [r for r in group if r.get("engine") == "socket"]
        serial = next((r for r in group if r.get("engine") == "serial"),
                      None)

        reference = serial or (lockstep[0] if lockstep else None)
        for row in lockstep:
            if row is reference:
                continue
            lockstep_pairs += 1
            check(reference, row, LOCKSTEP_COMPARE, "lockstep")

        if asyncs and serial is None:
            mismatches.append(
                f"async rows without a serial reference at {key}")
            continue
        for row in asyncs:
            async_rows += 1
            if row.get("sync", "alpha") == "none":
                check(serial, row, NATIVE_COMPARE, "native")
                for field in ("sync_messages", "sync_words"):
                    if row.get(field, 0) != 0:
                        mismatches.append(
                            f"native {field}: expected 0, got "
                            f"{row.get(field)}\n    row: {describe(row)}")
            else:
                check(serial, row, ASYNC_COMPARE, "async")

        # Thread-invariance: async rows sharing a (delay, sync) point are
        # the same schedule run by different worker counts — exact on
        # everything.
        by_point = {}
        for row in asyncs:
            point = (row.get("max_delay"), row.get("event_seed"),
                     row.get("sync", "alpha"))
            by_point.setdefault(point, []).append(row)
        for point_rows in by_point.values():
            ref = min(point_rows, key=lambda r: r.get("threads", 0))
            for row in point_rows:
                if row is ref:
                    continue
                async_thread_pairs += 1
                check(ref, row, ASYNC_THREAD_COMPARE, "async-threads")

        # Socket-rank merge: one launch per (transport, procs); the ranks'
        # owned slices must partition the serial row exactly.
        by_launch = {}
        for row in sockets:
            launch = (row.get("transport"), row.get("procs"))
            by_launch.setdefault(launch, []).append(row)
        for launch_rows in sorted(by_launch.items(), key=str):
            socket_launches += 1
            check_socket_launch(serial, launch_rows, key)

    print(f"parity_diff: {rows} rows, {len(groups)} scenario points, "
          f"{lockstep_pairs} lock-step comparisons, {async_rows} async "
          f"comparisons, {async_thread_pairs} async thread-invariance "
          f"comparisons, {socket_launches} socket launch merges")
    if mismatches:
        for m in mismatches:
            print(f"PARITY MISMATCH: {m}", file=sys.stderr)
        print(f"parity_diff: {len(mismatches)} mismatches", file=sys.stderr)
        return 1
    print("parity_diff: engine parity holds across all backends")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
