#!/usr/bin/env python3
"""Span-trace report tool for the dmst observability subsystem (obs/).

Reads a trace written by `scenario_runner --trace=PATH` (or any caller of
obs/export.h) in either format:

  jsonl   one JSON object per line: a "total" row, "span" rows, "tag" rows
  chrome  Chrome-trace JSON (Perfetto-loadable); spans are "X" events,
          phase names come from thread_name metadata, and the
          "dmst_totals" instant event carries the RunStats totals

Modes:

  trace_report.py FILE                 per-phase summary table
  trace_report.py FILE --check        verify conservation: span sums must
                                      equal the recorded totals (exit 1
                                      on violation — self-checking CI leg)
  trace_report.py FILE --diff OTHER   compare two traces' span tables
                                      (exit 1 if they differ — the
                                      tri-engine parity check from files);
                                      --diff-fields=f1,f2 selects the span
                                      fields compared (default
                                      messages,words,first_round,last_round;
                                      multi-epoch drivers skew round
                                      numbering: use messages,words)

--format=auto|jsonl|chrome names the format the trace was *written* in —
the same choice the writer made via `scenario_runner --trace_format=...`
(obs/export.h callers pick it per file). The default `auto` sniffs: a
first line that parses as a JSON object with a "type" key is jsonl, else
chrome. Pass --format explicitly only when sniffing could mislead (e.g.
a truncated file); it applies to both FILE and the --diff OTHER file, so
diffing a jsonl trace against a chrome trace needs --format=auto.

Exit status: 0 ok, 1 check/diff failure, 2 bad input.
"""

import argparse
import json
import sys

SYNC_TRACK = "synchronizer"


def die(msg):
    print("trace_report: " + msg, file=sys.stderr)
    sys.exit(2)


def sniff_format(path):
    with open(path) as f:
        head = f.readline().strip()
    try:
        row = json.loads(head)
        if isinstance(row, dict) and "type" in row:
            return "jsonl"
    except json.JSONDecodeError:
        pass
    return "chrome"


def load_jsonl(path):
    """Returns (spans, totals): spans maps (phase, level) -> counter dict."""
    spans = {}
    totals = None
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                die("%s:%d: bad JSON: %s" % (path, lineno, e))
            kind = row.get("type")
            if kind == "total":
                totals = row
            elif kind == "span":
                spans[(row["phase"], row["level"])] = row
            elif kind == "tag":
                pass
            else:
                die("%s:%d: unknown row type %r" % (path, lineno, kind))
    if totals is None:
        die("%s: no total row" % path)
    return spans, totals


def load_chrome(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            die("%s: bad JSON: %s" % (path, e))
    events = doc.get("traceEvents")
    if events is None:
        die("%s: no traceEvents (not a chrome trace?)" % path)
    tid_name = {}
    spans = {}
    totals = None
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            tid_name[ev["tid"]] = ev["args"]["name"]
    for ev in events:
        ph = ev.get("ph")
        if ph == "X":
            phase = tid_name.get(ev["tid"], "tid%d" % ev["tid"])
            if phase == SYNC_TRACK:
                continue  # synchronizer control traffic, not a driver span
            args = ev["args"]
            level = args.get("level", 0)
            spans[(phase, level)] = {
                "phase": phase,
                "level": level,
                "messages": args["messages"],
                "words": args["words"],
                "first_round": int(ev["ts"]),
                "last_round": int(ev["ts"]) + int(ev["dur"]) - 1,
            }
        elif ph == "i" or ph == "I":
            if ev.get("name") == "dmst_totals":
                totals = ev["args"]
    if totals is None:
        die("%s: no dmst_totals event" % path)
    return spans, totals


def load(path, fmt):
    if fmt == "auto":
        fmt = sniff_format(path)
    if fmt == "jsonl":
        return load_jsonl(path)
    return load_chrome(path)


def summarize(path, spans, totals):
    print("%s: %d spans, %d messages, %d words, %d rounds"
          % (path, len(spans), totals["messages"], totals["words"],
             totals["rounds"]))
    if totals.get("sync_messages"):
        print("  synchronizer: %d messages, %d words"
              % (totals["sync_messages"], totals["sync_words"]))
    header = "%-14s %6s %10s %10s %8s %8s" % (
        "phase", "level", "messages", "words", "first", "last")
    print("  " + header)
    for (phase, level) in sorted(spans, key=span_order):
        s = spans[(phase, level)]
        print("  %-14s %6d %10d %10d %8d %8d"
              % (phase, level, s["messages"], s["words"],
                 s["first_round"], s["last_round"]))


def span_order(key):
    phase, level = key
    return (phase, level)


def check(path, spans, totals):
    """Conservation: the spans partition the run's payload traffic."""
    failures = []
    msg_sum = sum(s["messages"] for s in spans.values())
    word_sum = sum(s["words"] for s in spans.values())
    if msg_sum != totals["messages"]:
        failures.append("message conservation: spans sum to %d, totals say %d"
                        % (msg_sum, totals["messages"]))
    if word_sum != totals["words"]:
        failures.append("word conservation: spans sum to %d, totals say %d"
                        % (word_sum, totals["words"]))
    for (phase, level), s in spans.items():
        if s["first_round"] > s["last_round"]:
            failures.append("span %s/%d: first_round %d > last_round %d"
                            % (phase, level, s["first_round"],
                               s["last_round"]))
        if s["last_round"] > totals["rounds"]:
            failures.append("span %s/%d: last_round %d beyond the run's %d"
                            % (phase, level, s["last_round"],
                               totals["rounds"]))
    if failures:
        for f in failures:
            print("%s: FAIL %s" % (path, f), file=sys.stderr)
        return False
    print("%s: conservation ok (%d spans, %d messages, %d words)"
          % (path, len(spans), msg_sum, word_sum))
    return True


PARITY_FIELDS = ("messages", "words", "first_round", "last_round")


def diff(path_a, spans_a, path_b, spans_b, fields=PARITY_FIELDS):
    """Structural comparison on the parity fields; vtime/tick are engine-
    specific timebases and deliberately excluded. Multi-epoch drivers
    (sync Borůvka) accumulate engine-specific round offsets across epoch
    boundaries — diff those with fields=messages,words."""
    same = True
    for key in sorted(set(spans_a) | set(spans_b), key=span_order):
        a, b = spans_a.get(key), spans_b.get(key)
        if a is None or b is None:
            print("span %s/%d: only in %s"
                  % (key[0], key[1], path_a if b is None else path_b))
            same = False
            continue
        for field in fields:
            if a.get(field) != b.get(field):
                print("span %s/%d %s: %s vs %s"
                      % (key[0], key[1], field, a.get(field), b.get(field)))
                same = False
    print("traces %s" % ("match" if same else "DIFFER"))
    return same


def main():
    # Full module docstring as the --help epilog: the modes/format notes
    # above are the documentation of record, and check_trace_report_help.py
    # asserts --help and the accepted flags stay in sync.
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog=__doc__.split("\n", 2)[2],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("file", help="trace file (jsonl or chrome)")
    ap.add_argument("--check", action="store_true",
                    help="verify span/total conservation")
    ap.add_argument("--diff", metavar="OTHER",
                    help="compare against a second trace file")
    ap.add_argument("--diff-fields", default=",".join(PARITY_FIELDS),
                    help="comma list of span fields --diff compares "
                         "(multi-epoch drivers skew round numbering "
                         "across engines: use messages,words)")
    ap.add_argument("--format", default="auto",
                    choices=["auto", "jsonl", "chrome"])
    args = ap.parse_args()

    spans, totals = load(args.file, args.format)
    ok = True
    if args.check:
        ok = check(args.file, spans, totals) and ok
    if args.diff:
        spans_b, _ = load(args.diff, args.format)
        fields = tuple(f for f in args.diff_fields.split(",") if f)
        ok = diff(args.file, spans, args.diff, spans_b, fields) and ok
    if not args.check and not args.diff:
        summarize(args.file, spans, totals)
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
