#!/usr/bin/env python3
"""Render one CI test leg's timing as a GitHub job-summary markdown table.

Reads the JUnit XML that `ctest --output-junit` wrote and prints a
per-test table (name, status, seconds) plus the leg total, so the shard
balance across the label legs (unit | fuzz | heavy | scenario) is visible
at a glance in the Actions summary.

Usage: ctest_leg_summary.py JUNIT.xml LEG_NAME
"""

import sys
import xml.etree.ElementTree as ET


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    path, leg = argv[1], argv[2]
    try:
        root = ET.parse(path).getroot()
    except (OSError, ET.ParseError) as e:
        print(f"ctest_leg_summary: cannot parse {path}: {e}",
              file=sys.stderr)
        return 2

    rows = []
    total = 0.0
    for case in root.iter("testcase"):
        name = case.get("name", "?")
        seconds = float(case.get("time", 0.0))
        status = case.get("status", "run")
        if case.find("failure") is not None or status == "fail":
            status = "FAIL"
        elif case.find("skipped") is not None:
            status = "skip"
        else:
            status = "ok"
        rows.append((seconds, name, status))
        total += seconds
    rows.sort(reverse=True)

    print(f"### `{leg}` leg timing — {len(rows)} tests, {total:.1f}s total")
    print("| test | status | seconds |")
    print("| --- | --- | ---: |")
    for seconds, name, status in rows:
        print(f"| {name} | {status} | {seconds:.2f} |")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
