#!/usr/bin/env python3
"""Docs integrity check: links and file pointers must resolve.

Over README.md, ROADMAP.md, and every docs/*.md:

  - every relative markdown link target ([text](path), # anchors and
    external http(s)/mailto links excluded) must exist on disk,
    resolved against the file containing the link;
  - every backtick-quoted repo path (`src/...`, `tests/...`, `bench/...`,
    `scripts/...`, `docs/...`, optionally suffixed `:line`) must exist.
    Brace/glob shorthands like `faults.{h,cpp}` and `bench_e*.cpp`
    expand before checking.

Pure stdlib, no network. Exit status: 0 ok, 1 dangling references.
"""

import glob
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
PATH_RE = re.compile(
    r"`((?:src|tests|bench|scripts|docs)/[A-Za-z0-9_./*{},-]+)`")


def expand_braces(path):
    m = re.search(r"\{([^}]*)\}", path)
    if not m:
        return [path]
    out = []
    for alt in m.group(1).split(","):
        out.extend(expand_braces(path[:m.start()] + alt + path[m.end():]))
    return out


def check_file(md, repo):
    failures = []
    text = md.read_text()
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#")[0]
        if not rel:
            continue
        if not (md.parent / rel).exists():
            failures.append("%s: dangling link (%s)" % (md.name, target))
    for ref in PATH_RE.findall(text):
        ref = ref.rstrip(".,")
        ref = re.sub(r":\d+$", "", ref)  # file.cpp:123 pointers
        for candidate in expand_braces(ref):
            if "*" in candidate:
                if not glob.glob(str(repo / candidate)):
                    failures.append("%s: no files match `%s`"
                                    % (md.name, candidate))
            elif not (repo / candidate).exists():
                failures.append("%s: missing file pointer `%s`"
                                % (md.name, candidate))
    return failures


def main():
    repo = Path(__file__).resolve().parent.parent
    files = [repo / "README.md", repo / "ROADMAP.md"]
    files += sorted((repo / "docs").glob("*.md"))
    failures = []
    checked = 0
    for md in files:
        if not md.exists():
            failures.append("expected file %s is missing"
                            % md.relative_to(repo))
            continue
        checked += 1
        failures.extend(check_file(md, repo))
    if failures:
        for f in failures:
            print("check_docs: FAIL " + f, file=sys.stderr)
        return 1
    print("check_docs: %d files, all links and file pointers resolve"
          % checked)
    return 0


if __name__ == "__main__":
    sys.exit(main())
