#!/usr/bin/env python3
"""CI bench regression gate: compare a fresh `bench_substrate --smoke`
JSON against the committed baseline (BENCH_substrate.json) and fail on a
regression beyond each metric's tolerance.

Gated metrics come from the baseline file's top-level "dmst_gate" list
(injected by scripts/refresh_bench_baseline.py when the baseline is
refreshed), so tolerances are per metric:

  "dmst_gate": [
    {"name": "BM_EngineRoundThroughput/50000/0", "field": "items_per_second",
     "direction": "higher", "tolerance": 0.25},
    {"name": "BM_ElkinEndToEnd/128", "field": "rounds",
     "direction": "exact"}
  ]

direction: "higher" (higher is better), "lower" (lower is better), or
"exact" (deterministic counters such as simulated tick counts — any
change fails, because it means the substrate's schedule changed, not that
the runner was noisy). "tolerance" (a fraction) overrides --tolerance for
that metric; "exact" ignores both.

A baseline without "dmst_gate" is a hard error: it means the baseline
was refreshed by copying raw `bench_substrate --smoke` output (which
would silently shrink the gate) instead of going through
scripts/refresh_bench_baseline.py.

Usage: bench_gate.py BASELINE.json CURRENT.json [--tolerance 0.25]
Exit status: 0 ok, 1 regression, 2 missing metric/gate/bad input.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    metrics = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        metrics[bench["name"]] = bench
    return data, metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="default fractional tolerance for gate entries "
                             "without their own (default 0.25)")
    args = parser.parse_args()

    try:
        baseline_data, baseline = load(args.baseline)
        _, current = load(args.current)
    except (OSError, ValueError) as e:
        print(f"bench_gate: cannot read input: {e}", file=sys.stderr)
        return 2

    # A baseline recorded against a debug build makes every wall-time gate
    # meaningless (any release run "passes" by miles) — refuse it outright.
    # "dmst_build_type" is injected by the bench binary itself (NDEBUG
    # probe); fall back to the stock "library_build_type" for baselines
    # that predate the custom field, which forces them through a refresh.
    ctx = baseline_data.get("context", {})
    build_type = ctx.get("dmst_build_type") or ctx.get("library_build_type")
    if build_type == "debug":
        print("bench_gate: baseline was recorded against a debug library "
              "build — rebuild with CMAKE_BUILD_TYPE=Release and refresh "
              "it with scripts/refresh_bench_baseline.py", file=sys.stderr)
        return 2

    gate = baseline_data.get("dmst_gate")
    if not isinstance(gate, list) or not gate:
        print("bench_gate: baseline has no dmst_gate block — refresh the "
              "baseline with scripts/refresh_bench_baseline.py, never by "
              "copying raw bench output", file=sys.stderr)
        return 2

    failures = []
    rows = []
    ok = True

    for entry in gate:
        name = entry.get("name")
        field = entry.get("field")
        direction = entry.get("direction")
        if direction not in ("higher", "lower", "exact"):
            print(f"bench_gate: bad direction for {name}: {direction}",
                  file=sys.stderr)
            ok = False
            continue
        if name not in baseline or name not in current:
            print(f"bench_gate: metric {name} missing "
                  f"(baseline: {name in baseline}, current: {name in current})",
                  file=sys.stderr)
            ok = False
            continue
        if field not in baseline[name] or field not in current[name]:
            print(f"bench_gate: field {field} missing for {name}",
                  file=sys.stderr)
            ok = False
            continue
        old = float(baseline[name][field])
        new = float(current[name][field])
        if direction == "exact":
            regressed = new != old
            tol_text = "exact"
        else:
            if old <= 0:
                print(f"bench_gate: non-positive baseline for {name}",
                      file=sys.stderr)
                ok = False
                continue
            tolerance = float(entry.get("tolerance", args.tolerance))
            tol_text = f"{tolerance:.0%}"
            if direction == "higher":
                regressed = new < old * (1.0 - tolerance)
            else:
                regressed = new > old * (1.0 + tolerance)
        change = "n/a" if old == 0 else f"{(new - old) / old:+.1%}"
        verdict = "REGRESSED" if regressed else "ok"
        rows.append((name, entry["field"], old, new, change, tol_text,
                     verdict))
        if regressed:
            failures.append(name)

    if not ok:
        return 2

    width = max(len(r[0]) for r in rows)
    print("bench regression gate (per-metric tolerances):")
    for name, field, old, new, change, tol, verdict in rows:
        print(f"  {name:<{width}}  {field:<16} "
              f"{old:>14.4g} -> {new:>14.4g}  {change:>7}  tol={tol:<5}  "
              f"{verdict}")

    if failures:
        print(f"bench_gate: regression in {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print("bench_gate: all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
