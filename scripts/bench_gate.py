#!/usr/bin/env python3
"""CI bench regression gate: compare a fresh `bench_substrate --smoke`
JSON against the committed baseline (BENCH_substrate.json) and fail on a
regression beyond the tolerance.

Gated metrics (the ISSUE-3 contract):
  - BM_EngineRoundThroughput/50000/0 and /50000/2: items_per_second,
    higher is better (simulator round throughput, serial and 2-worker).
  - BM_ElkinEndToEnd/128: real_time, lower is better (Elkin end-to-end
    wall clock).
Other benchmarks in the files are reported but not gated.

Usage: bench_gate.py BASELINE.json CURRENT.json [--tolerance 0.25]
Exit status: 0 ok, 1 regression, 2 missing metric/bad input.
"""

import argparse
import json
import sys

GATED_HIGHER_IS_BETTER = [
    ("BM_EngineRoundThroughput/50000/0", "items_per_second"),
    ("BM_EngineRoundThroughput/50000/2", "items_per_second"),
]
GATED_LOWER_IS_BETTER = [
    ("BM_ElkinEndToEnd/128", "real_time"),
]


def load_metrics(path):
    with open(path) as f:
        data = json.load(f)
    metrics = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        metrics[bench["name"]] = bench
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    args = parser.parse_args()

    try:
        baseline = load_metrics(args.baseline)
        current = load_metrics(args.current)
    except (OSError, ValueError) as e:
        print(f"bench_gate: cannot read input: {e}", file=sys.stderr)
        return 2

    failures = []
    rows = []

    def check(name, field, higher_is_better):
        if name not in baseline or name not in current:
            print(f"bench_gate: metric {name} missing "
                  f"(baseline: {name in baseline}, current: {name in current})",
                  file=sys.stderr)
            return False
        old = float(baseline[name][field])
        new = float(current[name][field])
        if old <= 0:
            print(f"bench_gate: non-positive baseline for {name}",
                  file=sys.stderr)
            return False
        change = (new - old) / old
        if higher_is_better:
            regressed = new < old * (1.0 - args.tolerance)
        else:
            regressed = new > old * (1.0 + args.tolerance)
        verdict = "REGRESSED" if regressed else "ok"
        rows.append((name, field, old, new, f"{change:+.1%}", verdict))
        if regressed:
            failures.append(name)
        return True

    ok = True
    for name, field in GATED_HIGHER_IS_BETTER:
        ok &= check(name, field, higher_is_better=True)
    for name, field in GATED_LOWER_IS_BETTER:
        ok &= check(name, field, higher_is_better=False)
    if not ok:
        return 2

    width = max(len(r[0]) for r in rows)
    print(f"bench regression gate (tolerance {args.tolerance:.0%}):")
    for name, field, old, new, change, verdict in rows:
        print(f"  {name:<{width}}  {field:<16} "
              f"{old:>14.4g} -> {new:>14.4g}  {change:>7}  {verdict}")

    if failures:
        print(f"bench_gate: regression in {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print("bench_gate: all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
