#!/usr/bin/env python3
"""Refresh the committed bench baseline: take a fresh
`bench_substrate --smoke` output and write it back with the per-metric
"dmst_gate" spec (see scripts/bench_gate.py) injected, so a baseline
refresh never silently drops the gate configuration.

Wall-time metrics keep a loose 25% tolerance (CI runners are noisy and
the baseline machine differs); the deterministic simulated tick counts
gate exactly.

Usage: refresh_bench_baseline.py FRESH.json COMMITTED.json
"""

import json
import sys

GATE = [
    {"name": "BM_EngineRoundThroughput/50000/0", "field": "items_per_second",
     "direction": "higher", "tolerance": 0.25},
    {"name": "BM_EngineRoundThroughput/50000/2", "field": "items_per_second",
     "direction": "higher", "tolerance": 0.25},
    {"name": "BM_EngineRoundThroughput/50000/0", "field": "rounds",
     "direction": "exact"},
    {"name": "BM_EngineRoundThroughput/50000/2", "field": "rounds",
     "direction": "exact"},
    {"name": "BM_ElkinEndToEnd/128", "field": "real_time",
     "direction": "lower", "tolerance": 0.25},
    {"name": "BM_ElkinEndToEnd/128", "field": "rounds",
     "direction": "exact"},
    # Event-loop microbenchmarks: the async engine's event/virtual-time
    # totals are deterministic per (graph, event_seed) and thread-invariant
    # — exact. Event throughput (events/sec) gates like wall time.
    {"name": "BM_AsyncEngineFlood/8/1/real_time", "field": "events",
     "direction": "exact"},
    {"name": "BM_AsyncEngineFlood/8/1/real_time", "field": "vtime",
     "direction": "exact"},
    {"name": "BM_AsyncEngineFlood/8/1/real_time", "field": "items_per_second",
     "direction": "higher", "tolerance": 0.25},
    {"name": "BM_AsyncEngineFlood/32/1/real_time", "field": "events",
     "direction": "exact"},
    {"name": "BM_AsyncEngineFlood/32/1/real_time", "field": "vtime",
     "direction": "exact"},
    {"name": "BM_AsyncEngineFlood/32/1/real_time", "field": "items_per_second",
     "direction": "higher", "tolerance": 0.25},
    {"name": "BM_EventWheel/1024", "field": "items_per_second",
     "direction": "higher", "tolerance": 0.25},
    {"name": "BM_SynchronizerPulse/8", "field": "items_per_second",
     "direction": "higher", "tolerance": 0.25},
    # Trace-overhead gate: the disabled-trace datapath must keep the exact
    # simulated schedule (rounds/messages), and the enabled path too.
    {"name": "BM_TraceOverhead/0", "field": "rounds",
     "direction": "exact"},
    {"name": "BM_TraceOverhead/0", "field": "messages",
     "direction": "exact"},
    {"name": "BM_TraceOverhead/1", "field": "rounds",
     "direction": "exact"},
    {"name": "BM_TraceOverhead/1", "field": "messages",
     "direction": "exact"},
]


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        data = json.load(f)
    ctx = data.get("context", {})
    if (ctx.get("dmst_build_type") or ctx.get("library_build_type")) == "debug":
        print("refresh: input was recorded against a debug library build — "
              "rebuild with CMAKE_BUILD_TYPE=Release first (bench_gate.py "
              "rejects debug baselines)", file=sys.stderr)
        return 2
    names = {b["name"] for b in data.get("benchmarks", [])}
    for entry in GATE:
        if entry["name"] not in names:
            print(f"refresh: gated metric {entry['name']} missing from "
                  f"{sys.argv[1]}", file=sys.stderr)
            return 2
    data["dmst_gate"] = GATE
    with open(sys.argv[2], "w") as f:
        json.dump(data, f, indent=2)
        f.write("\n")
    print(f"refresh: wrote {sys.argv[2]} with {len(GATE)} gated metrics")
    return 0


if __name__ == "__main__":
    sys.exit(main())
