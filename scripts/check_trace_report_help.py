#!/usr/bin/env python3
"""Smoke check: trace_report.py --help stays in sync with its flags.

The tool's module docstring is its documentation of record (and is shown
as the --help epilog). This check fails if either drifts:

  - every --flag the argparse parser accepts must appear in --help output
    (argparse guarantees this) AND in the module docstring;
  - every --flag the docstring mentions must be one the parser accepts
    (no documented-but-removed flags).

Exit status: 0 in sync, 1 drift, 2 cannot run the tool.
"""

import re
import subprocess
import sys
from pathlib import Path

FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")


def main():
    tool = Path(__file__).resolve().parent / "trace_report.py"
    try:
        help_text = subprocess.run(
            [sys.executable, str(tool), "--help"],
            capture_output=True, text=True, check=True).stdout
    except (OSError, subprocess.CalledProcessError) as e:
        print("check_trace_report_help: cannot run %s --help: %s"
              % (tool, e), file=sys.stderr)
        return 2

    docstring = tool.read_text().split('"""')[1]

    # Flags argparse accepts: parse them out of the usage block, where
    # every option is listed exactly once in [--flag ...] form.
    usage = help_text.split("\n\n")[0]
    accepted = set(FLAG_RE.findall(usage)) - {"--help"}
    documented = set(FLAG_RE.findall(docstring))
    # The docstring also names scenario_runner's writer-side flags when
    # explaining the format interaction; those are not this tool's flags.
    documented -= {"--trace", "--trace_format"}

    failures = []
    for flag in sorted(accepted - documented):
        failures.append("accepted flag %s is not in the module docstring"
                        % flag)
    for flag in sorted(documented - accepted):
        failures.append("docstring mentions %s but the parser does not "
                        "accept it" % flag)
    if "--trace_format" not in docstring:
        failures.append("docstring no longer explains the --trace_format "
                        "(writer-side) interaction")
    if failures:
        for f in failures:
            print("check_trace_report_help: FAIL " + f, file=sys.stderr)
        return 1
    print("check_trace_report_help: --help and docstring in sync "
          "(%d flags)" % len(accepted))
    return 0


if __name__ == "__main__":
    sys.exit(main())
